//! Detailed placement: greedy same-size cell swapping.
//!
//! After legalization, a cheap local-improvement pass recovers the
//! wirelength the row-snap gave away: repeatedly sweep over cell pairs in
//! a spatial window and swap two cells when that lowers total HPWL.
//! Restricting swaps to (nearly) equal-width cells keeps the placement
//! legal without re-running the legalizer.

use gtl_netlist::{CellId, Netlist};

use crate::Placement;

/// Parameters of the swap pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedConfig {
    /// Sweeps over the design.
    pub passes: usize,
    /// Candidate partners per cell (nearest in the ordering; larger =
    /// better quality, slower).
    pub window: usize,
    /// Relative width difference allowed for a swap (0.0 = exact match).
    pub width_tolerance: f64,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self { passes: 2, window: 8, width_tolerance: 1e-9 }
    }
}

/// Outcome of the swap pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedOutcome {
    /// HPWL before.
    pub hpwl_before: f64,
    /// HPWL after.
    pub hpwl_after: f64,
    /// Number of swaps applied.
    pub swaps: usize,
}

/// Improves `placement` in place by greedy swapping; returns statistics.
///
/// # Panics
///
/// Panics if the placement does not cover the netlist.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::detailed::{improve, DetailedConfig};
/// use gtl_place::Placement;
///
/// // Two nets whose cells are crosswise-placed: one swap fixes both.
/// let mut b = NetlistBuilder::new();
/// let a = b.add_cell("a", 1.0);
/// let c = b.add_cell("b", 1.0);
/// let d = b.add_cell("c", 1.0);
/// let e = b.add_cell("d", 1.0);
/// b.add_anonymous_net([a, c]); // wants a near b
/// b.add_anonymous_net([d, e]); // wants c near d
/// let nl = b.finish();
/// let mut p = Placement::from_coords(vec![0.0, 10.0, 10.0, 0.0], vec![0.0; 4]);
/// let outcome = improve(&nl, &mut p, &DetailedConfig::default());
/// assert!(outcome.hpwl_after < outcome.hpwl_before);
/// ```
pub fn improve(
    netlist: &Netlist,
    placement: &mut Placement,
    config: &DetailedConfig,
) -> DetailedOutcome {
    assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
    let hpwl_before = crate::hpwl(netlist, placement);
    let n = netlist.num_cells();
    let mut swaps = 0usize;

    // Spatial ordering: row-major by (y, x) so window partners are nearby.
    let mut order: Vec<u32> = (0..n as u32).collect();

    for _ in 0..config.passes {
        order.sort_by(|&a, &b| {
            let (ax, ay) = placement.position(CellId::from(a));
            let (bx, by) = placement.position(CellId::from(b));
            ay.total_cmp(&by).then(ax.total_cmp(&bx)).then(a.cmp(&b))
        });
        let mut improved = false;
        for i in 0..n {
            for j in (i + 1)..(i + 1 + config.window).min(n) {
                let a = CellId::from(order[i]);
                let b = CellId::from(order[j]);
                let wa = netlist.cell_area(a);
                let wb = netlist.cell_area(b);
                if (wa - wb).abs() > config.width_tolerance * wa.max(wb).max(1e-12) {
                    continue;
                }
                if swap_gain(netlist, placement, a, b) > 1e-12 {
                    swap_positions(placement, a, b);
                    swaps += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    DetailedOutcome { hpwl_before, hpwl_after: crate::hpwl(netlist, placement), swaps }
}

/// HPWL decrease if `a` and `b` exchanged positions (positive = better).
fn swap_gain(netlist: &Netlist, placement: &Placement, a: CellId, b: CellId) -> f64 {
    let before = local_hpwl(netlist, placement, a, b);
    let mut trial = placement.clone();
    swap_positions(&mut trial, a, b);
    before - local_hpwl(netlist, &trial, a, b)
}

/// Sum of HPWL over the nets incident to `a` or `b` (shared nets once).
fn local_hpwl(netlist: &Netlist, placement: &Placement, a: CellId, b: CellId) -> f64 {
    let mut total = 0.0;
    for &net in netlist.cell_nets(a) {
        total += crate::wirelength::net_wirelength(
            netlist,
            placement,
            net,
            crate::wirelength::WirelengthModel::Hpwl,
        );
    }
    for &net in netlist.cell_nets(b) {
        if netlist.cell_nets(a).contains(&net) {
            continue;
        }
        total += crate::wirelength::net_wirelength(
            netlist,
            placement,
            net,
            crate::wirelength::WirelengthModel::Hpwl,
        );
    }
    total
}

fn swap_positions(placement: &mut Placement, a: CellId, b: CellId) {
    let (ax, ay) = placement.position(a);
    let (bx, by) = placement.position(b);
    placement.set_position(a, bx, by);
    placement.set_position(b, ax, ay);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpwl;
    use gtl_netlist::NetlistBuilder;

    #[test]
    fn crosswise_pairs_get_fixed() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..4).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        b.add_anonymous_net([cells[0], cells[1]]);
        b.add_anonymous_net([cells[2], cells[3]]);
        let nl = b.finish();
        // c0 at 0, c1 at 10; c2 at 10+eps, c3 at eps — swapping c1 and c2
        // (equal widths) shortens both nets.
        let mut p = Placement::from_coords(vec![0.0, 10.0, 10.1, 0.1], vec![0.0; 4]);
        let before = hpwl(&nl, &p);
        let outcome = improve(&nl, &mut p, &DetailedConfig::default());
        assert_eq!(outcome.hpwl_before, before);
        assert!(outcome.swaps >= 1);
        assert!(outcome.hpwl_after < before / 2.0, "{} → {}", before, outcome.hpwl_after);
    }

    #[test]
    fn never_worsens_hpwl() {
        let (nl, _) = fixture(64, 3);
        let mut p = Placement::from_coords(
            (0..64).map(|i| (i % 8) as f64).collect(),
            (0..64).map(|i| (i / 8) as f64).collect(),
        );
        let outcome = improve(&nl, &mut p, &DetailedConfig::default());
        assert!(outcome.hpwl_after <= outcome.hpwl_before + 1e-9);
    }

    #[test]
    fn width_mismatch_blocks_swaps() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0);
        let c = b.add_cell("b", 4.0); // different width
        let d = b.add_cell("c", 1.0);
        let e = b.add_cell("d", 4.0);
        b.add_anonymous_net([a, c]);
        b.add_anonymous_net([d, e]);
        let nl = b.finish();
        let mut p = Placement::from_coords(vec![0.0, 10.0, 10.0, 0.0], vec![0.0; 4]);
        // Only the (c1, c3) pair shares a width; a↔d swap is the other
        // equal pair. Either way nothing may pair across widths.
        let before_positions = p.clone();
        let _ = improve(&nl, &mut p, &DetailedConfig { window: 4, ..Default::default() });
        for i in 0..4 {
            let id = gtl_netlist::CellId::new(i);
            let (x0, _) = before_positions.position(id);
            let (x1, _) = p.position(id);
            if (x0 - x1).abs() > 1e-9 {
                // Any moved cell must have swapped with an equal-area cell.
                let area = nl.cell_area(id);
                let partner = (0..4)
                    .map(gtl_netlist::CellId::new)
                    .find(|&o| o != id && (nl.cell_area(o) - area).abs() < 1e-9)
                    .unwrap();
                let _ = partner;
            }
        }
    }

    #[test]
    fn deterministic() {
        let (nl, _) = fixture(40, 5);
        let base = Placement::from_coords(
            (0..40).map(|i| ((i * 17) % 40) as f64).collect(),
            (0..40).map(|i| ((i * 29) % 40) as f64).collect(),
        );
        let mut p1 = base.clone();
        let mut p2 = base;
        improve(&nl, &mut p1, &DetailedConfig::default());
        improve(&nl, &mut p2, &DetailedConfig::default());
        assert_eq!(p1, p2);
    }

    fn fixture(n: usize, stride: usize) -> (Netlist, Vec<gtl_netlist::CellId>) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..n {
            b.add_anonymous_net([cells[i], cells[(i + stride) % n]]);
        }
        (b.finish(), cells)
    }
}
