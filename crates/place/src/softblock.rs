//! Soft-block floorplanning from GTLs (paper intro, bullet 2).
//!
//! > *"Since a GTL will stay together during placement, the designer may
//! > wish to form a soft block for the gates in the GTL. Then during
//! > placement, the soft block can be translated into placement
//! > constraints (like attractions, forces, or move bounds)."*
//!
//! Given discovered GTLs and a seed placement, this module plans one
//! rectangular soft block per GTL: sized for the group's area plus
//! whitespace, centered at the group's placement centroid, then shifted
//! minimally so blocks neither overlap each other nor leave the die. The
//! resulting [`SoftBlock`]s carry move bounds a placer can enforce.

use gtl_netlist::{CellId, Netlist};

use crate::{Die, Placement};

/// A planned soft block: a region one GTL should stay inside.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftBlock {
    /// The member cells (the GTL).
    pub cells: Vec<CellId>,
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl SoftBlock {
    /// Block width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Block height.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Block area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether `other` overlaps this block (touching edges do not count).
    pub fn overlaps(&self, other: &SoftBlock) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Whether the block lies inside `die`.
    pub fn inside(&self, die: &Die) -> bool {
        self.x0 >= -1e-9
            && self.y0 >= -1e-9
            && self.x1 <= die.width + 1e-9
            && self.y1 <= die.height + 1e-9
    }

    /// Clamps a cell position into the block (the "move bound" a placer
    /// would enforce).
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(self.x0, self.x1), y.clamp(self.y0, self.y1))
    }
}

/// Planning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftBlockConfig {
    /// Whitespace fraction inside each block (0.3 = 30% slack).
    pub whitespace: f64,
    /// Shift step used when resolving overlaps, as a fraction of the die.
    pub step_fraction: f64,
    /// Maximum resolution sweeps before giving up on an overlap.
    pub max_sweeps: usize,
}

impl Default for SoftBlockConfig {
    fn default() -> Self {
        Self { whitespace: 0.3, step_fraction: 0.02, max_sweeps: 400 }
    }
}

/// Plans one soft block per GTL.
///
/// Blocks are processed largest-first; each is centered on its GTL's
/// placement centroid and nudged away from already-placed blocks and die
/// edges until it fits. Returns `None` for a GTL whose block cannot be
/// placed without overlap within `max_sweeps` (pathologically full dies).
///
/// # Panics
///
/// Panics if the placement does not cover the netlist, or a GTL is empty.
pub fn plan_soft_blocks(
    netlist: &Netlist,
    placement: &Placement,
    gtls: &[Vec<CellId>],
    die: &Die,
    config: &SoftBlockConfig,
) -> Vec<Option<SoftBlock>> {
    assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
    // Largest area first so big blocks grab space before small ones.
    let mut order: Vec<usize> = (0..gtls.len()).collect();
    let block_area = |i: usize| -> f64 {
        gtls[i].iter().map(|&c| netlist.cell_area(c)).sum::<f64>()
            / (1.0 - config.whitespace).max(0.1)
    };
    order.sort_by(|&a, &b| block_area(b).total_cmp(&block_area(a)).then(a.cmp(&b)));

    let mut planned: Vec<Option<SoftBlock>> = vec![None; gtls.len()];
    let mut placed: Vec<SoftBlock> = Vec::new();
    for &i in &order {
        let members = &gtls[i];
        assert!(!members.is_empty(), "GTL {i} is empty");
        let side = block_area(i).sqrt().min(die.width.min(die.height));
        let n = members.len() as f64;
        let (mut cx, mut cy) = (0.0, 0.0);
        for &c in members {
            let (x, y) = placement.position(c);
            cx += x;
            cy += y;
        }
        cx /= n;
        cy /= n;

        if let Some(block) = settle(members, cx, cy, side, die, &placed, config) {
            placed.push(block.clone());
            planned[i] = Some(block);
        }
    }
    planned
}

/// Tries positions spiraling outward from the centroid until the block
/// fits in the die without overlapping `placed`.
fn settle(
    members: &[CellId],
    cx: f64,
    cy: f64,
    side: f64,
    die: &Die,
    placed: &[SoftBlock],
    config: &SoftBlockConfig,
) -> Option<SoftBlock> {
    let step = (die.width.max(die.height) * config.step_fraction).max(1e-6);
    let half = side / 2.0;
    let make = |x: f64, y: f64| {
        let x0 = (x - half).clamp(0.0, (die.width - side).max(0.0));
        let y0 = (y - half).clamp(0.0, (die.height - side).max(0.0));
        SoftBlock { cells: members.to_vec(), x0, y0, x1: x0 + side, y1: y0 + side }
    };
    // Spiral: ring r = 0, 1, 2, …, 8 directions per ring.
    for ring in 0..config.max_sweeps {
        let candidates: Vec<(f64, f64)> = if ring == 0 {
            vec![(cx, cy)]
        } else {
            let r = ring as f64 * step;
            (0..8)
                .map(|k| {
                    let angle = k as f64 * std::f64::consts::FRAC_PI_4;
                    (cx + r * angle.cos(), cy + r * angle.sin())
                })
                .collect()
        };
        for (x, y) in candidates {
            let block = make(x, y);
            if block.inside(die) && placed.iter().all(|p| !block.overlaps(p)) {
                return Some(block);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn unit_cells(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(n);
        b.finish()
    }

    fn ids(range: std::ops::Range<usize>) -> Vec<CellId> {
        range.map(CellId::new).collect()
    }

    #[test]
    fn block_geometry() {
        let b = SoftBlock { cells: vec![], x0: 1.0, y0: 2.0, x1: 4.0, y1: 6.0 };
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.clamp(0.0, 10.0), (1.0, 6.0));
        let other = SoftBlock { cells: vec![], x0: 3.0, y0: 5.0, x1: 5.0, y1: 7.0 };
        assert!(b.overlaps(&other));
        let apart = SoftBlock { cells: vec![], x0: 4.0, y0: 2.0, x1: 5.0, y1: 3.0 };
        assert!(!b.overlaps(&apart), "touching edges are not overlap");
    }

    #[test]
    fn blocks_cover_area_and_stay_inside() {
        let nl = unit_cells(200);
        let die = Die { width: 40.0, height: 40.0, rows: 40 };
        // Two GTLs placed at opposite corners.
        let mut xs = vec![20.0; 200];
        let mut ys = vec![20.0; 200];
        for i in 0..50 {
            xs[i] = 5.0;
            ys[i] = 5.0;
        }
        for i in 50..130 {
            xs[i] = 35.0;
            ys[i] = 35.0;
        }
        let p = Placement::from_coords(xs, ys);
        let gtls = vec![ids(0..50), ids(50..130)];
        let blocks = plan_soft_blocks(&nl, &p, &gtls, &die, &SoftBlockConfig::default());
        for (i, block) in blocks.iter().enumerate() {
            let block = block.as_ref().expect("block planned");
            assert!(block.inside(&die));
            let area: f64 = gtls[i].iter().map(|&c| nl.cell_area(c)).sum();
            assert!(block.area() >= area, "block too small for its GTL");
        }
        // Disjoint.
        let (a, b) = (blocks[0].as_ref().unwrap(), blocks[1].as_ref().unwrap());
        assert!(!a.overlaps(b));
    }

    #[test]
    fn colocated_gtls_get_separated() {
        let nl = unit_cells(120);
        let die = Die { width: 30.0, height: 30.0, rows: 30 };
        // Both GTLs centered at the same point.
        let p = Placement::from_coords(vec![15.0; 120], vec![15.0; 120]);
        let gtls = vec![ids(0..60), ids(60..120)];
        let blocks = plan_soft_blocks(&nl, &p, &gtls, &die, &SoftBlockConfig::default());
        let (a, b) = (blocks[0].as_ref().unwrap(), blocks[1].as_ref().unwrap());
        assert!(!a.overlaps(b), "co-located blocks must be nudged apart");
    }

    #[test]
    fn impossible_fit_returns_none() {
        let nl = unit_cells(100);
        // Die area 25 with whitespace-adjusted demand ≈ 143: cannot fit.
        let die = Die { width: 5.0, height: 5.0, rows: 5 };
        let p = Placement::from_coords(vec![2.0; 100], vec![2.0; 100]);
        let gtls = vec![ids(0..50), ids(50..100)];
        let blocks = plan_soft_blocks(&nl, &p, &gtls, &die, &SoftBlockConfig::default());
        // The first (largest) block fills the die; the second cannot fit.
        assert!(blocks.iter().filter(|b| b.is_none()).count() >= 1);
    }

    #[test]
    fn block_ids_align_with_input_order() {
        let nl = unit_cells(30);
        let die = Die { width: 30.0, height: 30.0, rows: 30 };
        let p = Placement::from_coords(vec![10.0; 30], vec![10.0; 30]);
        let gtls = vec![ids(0..10), ids(10..30)];
        let blocks = plan_soft_blocks(&nl, &p, &gtls, &die, &SoftBlockConfig::default());
        assert_eq!(blocks[0].as_ref().unwrap().cells, gtls[0]);
        assert_eq!(blocks[1].as_ref().unwrap().cells, gtls[1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_gtl_panics() {
        let nl = unit_cells(4);
        let die = Die { width: 4.0, height: 4.0, rows: 4 };
        let p = Placement::from_coords(vec![1.0; 4], vec![1.0; 4]);
        let _ = plan_soft_blocks(&nl, &p, &[vec![]], &die, &SoftBlockConfig::default());
    }
}
