//! Physical-design substrate: placement, congestion, and cell inflation.
//!
//! The DAC 2010 paper's evaluation depends on a placer and a global-routing
//! congestion picture (Figures 1, 4, 6, 7; the §5.1.3 inflation numbers).
//! The authors used commercial IBM tools; this crate implements the
//! standard academic equivalents from scratch:
//!
//! * [`quadratic`] — the netlist Laplacian (clique/star net model), a
//!   hand-written Jacobi-preconditioned conjugate-gradient solver, and the
//!   [`quadratic::ShardSolver`] scratch for shard-restricted systems;
//! * [`place`] — SimPL-style anchored solve/spread iterations with a
//!   boosted-anchor epilogue, region-sharded onto `gtl_core::exec`
//!   (byte-identical for any worker count);
//! * [`spread`] — recursive-bisection density spreading (order-preserving,
//!   separates stacked clusters coherently);
//! * [`legal`] — a Tetris row legalizer;
//! * [`detailed`] — greedy equal-width swap refinement;
//! * [`wirelength`] — HPWL / star / rectilinear-MST models and per-net
//!   reports;
//! * [`congestion`] — probabilistic routing-demand estimation (RUDY and
//!   L-shape models), stripe-batched over tile rows, with the paper's
//!   congestion statistics;
//! * [`softblock`] — soft-block floorplanning from GTLs (the paper's
//!   application 2);
//! * [`inflate`] — the §5.1.3 flow: inflate GTL cells, re-place, and
//!   compare congestion.
//!
//! # Example: place a small design and estimate congestion
//!
//! ```
//! use gtl_netlist::NetlistBuilder;
//! use gtl_place::{congestion, Die, PlacerConfig};
//!
//! let mut b = NetlistBuilder::new();
//! let cells: Vec<_> = (0..64).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
//! for i in 0..63 {
//!     b.add_anonymous_net([cells[i], cells[i + 1]]);
//! }
//! let nl = b.finish();
//!
//! let die = Die::for_netlist(&nl, 0.6);
//! let placement = gtl_place::place(&nl, &die, &PlacerConfig::default());
//! let map = congestion::estimate(&nl, &placement, &die, &congestion::RoutingConfig::default());
//! assert!(map.max_utilization() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod detailed;
pub mod inflate;
pub mod legal;
pub mod quadratic;
pub mod softblock;
pub mod spread;
pub mod wirelength;

mod placer;

pub use placer::{
    place, place_cancellable, place_cancellable_with_scratch, PlaceScratch, Placement, PlacerConfig,
};

use gtl_netlist::Netlist;

/// The placement region: a `width × height` core with standard-cell rows.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Die {
    /// Core width.
    pub width: f64,
    /// Core height.
    pub height: f64,
    /// Number of standard-cell rows (row height = `height / rows`).
    pub rows: usize,
}

impl Die {
    /// A square die sized so that `netlist`'s cell area fills `utilization`
    /// of it, with roughly unit-height rows.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization <= 1`.
    pub fn for_netlist(netlist: &Netlist, utilization: f64) -> Self {
        assert!(utilization > 0.0 && utilization <= 1.0, "utilization must be in (0, 1]");
        let side = (netlist.total_cell_area() / utilization).sqrt().max(1.0);
        Self { width: side, height: side, rows: (side.ceil() as usize).max(1) }
    }

    /// Height of one row.
    pub fn row_height(&self) -> f64 {
        self.height / self.rows as f64
    }

    /// Clamps a point into the die.
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(0.0, self.width), y.clamp(0.0, self.height))
    }
}

/// Total half-perimeter wirelength (HPWL) of a placement — the placer's
/// quality measure.
///
/// # Panics
///
/// Panics if the placement does not cover the netlist.
pub fn hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
    let mut total = 0.0;
    for net in netlist.nets() {
        let cells = netlist.net_cells(net);
        if cells.len() < 2 {
            continue;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &c in cells {
            let (x, y) = placement.position(c);
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        total += (x1 - x0) + (y1 - y0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellId, NetlistBuilder};

    #[test]
    fn die_sizing() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 50.0);
        b.add_cell("c", 50.0);
        let nl = b.finish();
        let die = Die::for_netlist(&nl, 0.25);
        assert!((die.width - 20.0).abs() < 1e-9);
        assert!((die.width * die.height * 0.25 - 100.0).abs() < 1e-6);
        assert!(die.row_height() > 0.0);
    }

    #[test]
    fn die_clamp() {
        let die = Die { width: 10.0, height: 5.0, rows: 5 };
        assert_eq!(die.clamp(-1.0, 7.0), (0.0, 5.0));
        assert_eq!(die.clamp(3.0, 2.0), (3.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 1.0);
        let nl = b.finish();
        let _ = Die::for_netlist(&nl, 0.0);
    }

    #[test]
    fn hpwl_of_known_layout() {
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("c0", 1.0);
        let c1 = b.add_cell("c1", 1.0);
        let c2 = b.add_cell("c2", 1.0);
        b.add_anonymous_net([c0, c1]);
        b.add_anonymous_net([c0, c1, c2]);
        let nl = b.finish();
        let p = Placement::from_coords(vec![0.0, 3.0, 1.0], vec![0.0, 4.0, 10.0]);
        // net0: (3-0)+(4-0)=7; net1: (3-0)+(10-0)=13.
        assert!((hpwl(&nl, &p) - 20.0).abs() < 1e-9);
        let _ = CellId::new(0);
    }

    #[test]
    fn hpwl_ignores_degenerate_nets() {
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("c0", 1.0);
        b.add_anonymous_net([c0]);
        let nl = b.finish();
        let p = Placement::from_coords(vec![5.0], vec![5.0]);
        assert_eq!(hpwl(&nl, &p), 0.0);
    }
}
