//! Cell inflation: the paper's §5.1.3 congestion-relief flow.
//!
//! Once GTLs are known, every GTL cell is inflated (the paper uses 4×) so
//! that the placer must reserve whitespace around the tangled logic; the
//! design is re-placed and congestion re-estimated. The paper reports a
//! 5× reduction in nets through 100%-congested tiles (179K → 36K), 2×
//! through 90% tiles (217K → 113K), and average congestion dropping from
//! 136% to 91%.
//!
//! Both halves of the flow run through the deterministic execution layer:
//! the two placements use the sharded placer ([`crate::place`]) and both
//! congestion maps come from the stripe-batched estimator
//! ([`crate::congestion`]), so the outcome is byte-identical for any
//! [`PlacerConfig::threads`] / [`RoutingConfig::threads`].

use gtl_netlist::{CellId, Netlist};

use crate::congestion::{estimate, CongestionMap, CongestionReport, RoutingConfig};
use crate::legal::legalize;
use crate::{place, Die, Placement, PlacerConfig};

/// Before/after outcome of the inflation flow.
#[derive(Debug, Clone)]
pub struct InflationOutcome {
    /// Congestion statistics of the baseline placement.
    pub before: CongestionReport,
    /// Congestion statistics after inflation and re-placement.
    pub after: CongestionReport,
    /// The baseline placement.
    pub baseline_placement: Placement,
    /// The post-inflation placement.
    pub inflated_placement: Placement,
    /// The baseline congestion map (for heatmaps, Figure 1).
    pub baseline_map: CongestionMap,
    /// The post-inflation congestion map (Figure 7).
    pub inflated_map: CongestionMap,
    /// The die shared by both runs.
    pub die: Die,
}

impl InflationOutcome {
    /// Ratio of nets through ≥ 100% tiles, before / after (the paper's
    /// "5X reduction"). Returns infinity if `after` is zero but `before`
    /// is not.
    pub fn reduction_100pct(&self) -> f64 {
        ratio(self.before.nets_through_100pct, self.after.nets_through_100pct)
    }

    /// Ratio of nets through ≥ 90% tiles, before / after ("2X reduction").
    pub fn reduction_90pct(&self) -> f64 {
        ratio(self.before.nets_through_90pct, self.after.nets_through_90pct)
    }
}

fn ratio(before: usize, after: usize) -> f64 {
    match (before, after) {
        (0, _) => 1.0,
        (_, 0) => f64::INFINITY,
        (b, a) => b as f64 / a as f64,
    }
}

/// Multiplies the area of each listed cell by `factor` in place.
///
/// # Panics
///
/// Panics if `factor` is not finite and positive, or a cell id is out of
/// bounds.
///
/// # Example
///
/// ```
/// use gtl_netlist::{CellId, NetlistBuilder};
/// use gtl_place::inflate::inflate_cells;
///
/// let mut b = NetlistBuilder::new();
/// let c = b.add_cell("c", 2.0);
/// let mut nl = b.finish();
/// inflate_cells(&mut nl, &[c], 4.0);
/// assert_eq!(nl.cell_area(c), 8.0);
/// ```
pub fn inflate_cells(netlist: &mut Netlist, cells: &[CellId], factor: f64) {
    assert!(factor.is_finite() && factor > 0.0, "factor must be finite and positive");
    for &c in cells {
        let area = netlist.cell_area(c);
        netlist.set_cell_area(c, area * factor);
    }
}

/// Runs the full §5.1.3 flow: place the baseline, measure congestion,
/// inflate `gtl_cells` by `factor`, re-place, and measure again.
///
/// Both runs use the **same die** — like the paper, inflation consumes
/// existing whitespace rather than growing the floorplan, so the routing
/// grid and capacities are identical and directly comparable. The die is
/// sized for the baseline at `utilization`, enlarged only if the inflated
/// design would not fit at 90% utilization. Capacities are auto-calibrated
/// on the baseline and frozen for the inflated run. Both placements are
/// legalized before congestion is measured — congestion is only meaningful
/// on overlap-free positions.
///
/// # Panics
///
/// Panics on invalid factor or out-of-range cells.
pub fn run_inflation_flow(
    netlist: &Netlist,
    gtl_cells: &[CellId],
    factor: f64,
    utilization: f64,
    placer_config: &PlacerConfig,
    routing_config: &RoutingConfig,
) -> InflationOutcome {
    let mut inflated = netlist.clone();
    inflate_cells(&mut inflated, gtl_cells, factor);

    // One die for both runs: baseline whitespace absorbs the inflation.
    let side = (netlist.total_cell_area() / utilization)
        .sqrt()
        .max((inflated.total_cell_area() / 0.9).sqrt())
        .max(1.0);
    let die = Die { width: side, height: side, rows: (side.ceil() as usize).max(1) };

    let baseline_placement =
        legalize(netlist, &place(netlist, &die, placer_config), &die).placement;
    let baseline_map = estimate(netlist, &baseline_placement, &die, routing_config);
    let before = baseline_map.report();

    let frozen = RoutingConfig {
        h_capacity: Some(baseline_map.h_capacity()),
        v_capacity: Some(baseline_map.v_capacity()),
        ..*routing_config
    };
    let inflated_placement =
        legalize(&inflated, &place(&inflated, &die, placer_config), &die).placement;
    let inflated_map = estimate(&inflated, &inflated_placement, &die, &frozen);
    let after = inflated_map.report();

    InflationOutcome {
        before,
        after,
        baseline_placement,
        inflated_placement,
        baseline_map,
        inflated_map,
        die,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    #[test]
    fn inflate_cells_multiplies_area() {
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("c0", 1.5);
        let c1 = b.add_cell("c1", 2.0);
        let mut nl = b.finish();
        inflate_cells(&mut nl, &[c0], 4.0);
        assert_eq!(nl.cell_area(c0), 6.0);
        assert_eq!(nl.cell_area(c1), 2.0);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn bad_factor_panics() {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 1.0);
        let mut nl = b.finish();
        inflate_cells(&mut nl, &[c], 0.0);
    }

    #[test]
    fn inflation_reduces_congestion_on_industrial_blobs() {
        // The §5.1.3 scenario end-to-end: wiring-dense ROM blobs are the
        // congestion hotspots; 4× inflation must cut peak utilization and
        // the nets passing through overfull tiles.
        let circuit = gtl_synth::industrial::generate(&gtl_synth::industrial::IndustrialConfig {
            scale: 0.005,
            ..Default::default()
        });
        let blob_cells: Vec<CellId> =
            circuit.truth.iter().flat_map(|b| b.iter().copied()).collect();
        // Calibration mirrors the paper's regime: fine tiles so the blob
        // hotspot is not averaged away, and capacities loose enough that
        // the background sits well below 100% while the packed blobs
        // exceed it — inflation must then pull the peaks below capacity.
        let routing = RoutingConfig { tiles: 48, target_mean: 0.37, ..RoutingConfig::default() };
        let outcome = run_inflation_flow(
            &circuit.netlist,
            &blob_cells,
            4.0,
            0.35,
            &PlacerConfig::default(),
            &routing,
        );
        assert!(
            outcome.after.max_utilization < outcome.before.max_utilization,
            "peak {} → {}",
            outcome.before.max_utilization,
            outcome.after.max_utilization
        );
        assert!(
            outcome.after.nets_through_100pct <= outcome.before.nets_through_100pct,
            "nets≥100% {} → {}",
            outcome.before.nets_through_100pct,
            outcome.after.nets_through_100pct
        );
        assert!(outcome.reduction_100pct() >= 1.0);
        assert!(outcome.reduction_90pct() > 0.0);
        // Both runs share one die and one routing capacity.
        assert_eq!(outcome.baseline_map.tiles(), outcome.inflated_map.tiles());
        assert_eq!(outcome.baseline_map.h_capacity(), outcome.inflated_map.h_capacity());
    }

    #[test]
    fn ratio_edge_cases() {
        assert_eq!(ratio(0, 5), 1.0);
        assert!(ratio(5, 0).is_infinite());
        assert_eq!(ratio(10, 5), 2.0);
    }
}
