//! Recursive-bisection density spreading.
//!
//! The quadratic solve clumps connected cells; spreading produces the
//! anchor targets that pull the placement apart. The algorithm here is a
//! deterministic recursive bisection (in the spirit of look-ahead
//! legalization / grid warping): a region's cells are sorted along its
//! longer axis and split at the **area median**, each half recursing into
//! the corresponding half-region, until a leaf holds a handful of cells
//! that are laid out on a uniform grid.
//!
//! Two properties matter for the tangled-logic experiments:
//!
//! * **order preservation** — cells keep their relative arrangement, so
//!   spreading is a gentle warp toward uniform density, not a scramble;
//! * **coherent cluster separation** — two dense groups collapsed onto
//!   the same point are split as units (ties break on cell id, and a
//!   group's ids are contiguous), so stacked GTL blobs move apart instead
//!   of interleaving. This is what lets cell inflation physically enlarge
//!   a blob's footprint.

use gtl_netlist::Netlist;

use crate::{Die, Placement};

/// Parameters of the bisection spreader.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpreadConfig {
    /// Target utilization: fraction of each region's area the cells of
    /// that region may demand before further splitting.
    pub target_utilization: f64,
    /// Stop splitting when a region holds at most this many cells.
    pub leaf_cells: usize,
    /// Hard recursion cap (guards degenerate inputs).
    pub max_depth: usize,
}

impl Default for SpreadConfig {
    fn default() -> Self {
        Self { target_utilization: 0.9, leaf_cells: 12, max_depth: 48 }
    }
}

/// Per-bin utilization snapshot of a placement.
#[derive(Debug, Clone)]
pub struct DensityMap {
    bins: usize,
    /// `area[by * bins + bx]` = total cell area in the bin.
    area: Vec<f64>,
    bin_capacity: f64,
}

impl DensityMap {
    /// Computes the density map of `placement` on a `bins × bins` grid.
    ///
    /// Shorthand for [`DensityMap::compute_striped`] with all cores; the
    /// result does not depend on the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the placement does not cover the netlist.
    pub fn compute(netlist: &Netlist, placement: &Placement, die: &Die, bins: usize) -> Self {
        Self::compute_striped(netlist, placement, die, bins, 0)
    }

    /// Computes the density map with the same stripe-batched decomposition
    /// as the congestion estimator: a serial O(cells) prepass bins cells
    /// to stripes of bin rows, then one work item per stripe accumulates
    /// only its own cells (in cell-id order, so the map is bit-identical
    /// for any `threads`; `0` = all cores).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the placement does not cover the netlist.
    pub fn compute_striped(
        netlist: &Netlist,
        placement: &Placement,
        die: &Die,
        bins: usize,
        threads: usize,
    ) -> Self {
        const STRIPE_ROWS: usize = gtl_core::shard::DEFAULT_STRIPE_ROWS;
        assert!(bins > 0, "bins must be positive");
        assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
        let bw = die.width / bins as f64;
        let bh = die.height / bins as f64;
        let row_stripes = gtl_core::shard::stripes(bins, STRIPE_ROWS);

        // Serial prepass: bin cells to their stripe (ascending cell id per
        // stripe, so every bin sees the same addition order as a plain
        // serial accumulation).
        let mut stripe_cells: Vec<Vec<u32>> = vec![Vec::new(); row_stripes.len()];
        for cell in netlist.cells() {
            let (_, y) = placement.position(cell);
            let by = ((y / bh) as usize).min(bins - 1);
            stripe_cells[by / STRIPE_ROWS].push(cell.index() as u32);
        }

        let slabs: Vec<Vec<f64>> = gtl_core::parallel_map_chunked(
            threads,
            row_stripes.len(),
            gtl_core::Granularity::Auto,
            |s| {
                let rows = &row_stripes[s];
                let mut slab = vec![0.0; rows.len() * bins];
                for &raw in &stripe_cells[s] {
                    let cell = gtl_netlist::CellId::from(raw);
                    let (x, y) = placement.position(cell);
                    let bx = ((x / bw) as usize).min(bins - 1);
                    let by = ((y / bh) as usize).min(bins - 1);
                    slab[(by - rows.start) * bins + bx] += netlist.cell_area(cell);
                }
                slab
            },
        );
        let mut area = vec![0.0; bins * bins];
        for (s, slab) in slabs.iter().enumerate() {
            let rows = &row_stripes[s];
            area[rows.start * bins..rows.end * bins].copy_from_slice(slab);
        }
        Self { bins, area, bin_capacity: bw * bh }
    }

    /// Grid side length.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Utilization (area / capacity) of bin `(bx, by)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn utilization(&self, bx: usize, by: usize) -> f64 {
        assert!(bx < self.bins && by < self.bins, "bin out of range");
        self.area[by * self.bins + bx] / self.bin_capacity
    }

    /// Largest bin utilization.
    pub fn max_utilization(&self) -> f64 {
        self.area.iter().fold(0.0f64, |m, &a| m.max(a / self.bin_capacity))
    }

    /// Mean bin utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.area.is_empty() {
            0.0
        } else {
            self.area.iter().sum::<f64>() / (self.bin_capacity * self.area.len() as f64)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Rect {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
}

impl Rect {
    fn width(&self) -> f64 {
        self.x1 - self.x0
    }
    fn height(&self) -> f64 {
        self.y1 - self.y0
    }
    fn area(&self) -> f64 {
        self.width() * self.height()
    }
}

/// Spreads `placement` toward uniform density, returning new positions
/// (the input is not modified).
///
/// # Panics
///
/// Panics if the placement does not cover the netlist.
pub fn spread(
    netlist: &Netlist,
    placement: &Placement,
    die: &Die,
    config: &SpreadConfig,
) -> Placement {
    assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
    let n = netlist.num_cells();
    let mut xs = placement.xs()[..n].to_vec();
    let mut ys = placement.ys()[..n].to_vec();
    if n == 0 {
        return Placement::from_coords(xs, ys);
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let rect = Rect { x0: 0.0, y0: 0.0, x1: die.width, y1: die.height };
    let ctx = Ctx { netlist, origx: placement.xs(), origy: placement.ys(), config };
    bisect(&ctx, &mut order, rect, 0, &mut xs, &mut ys);
    Placement::from_coords(xs, ys)
}

struct Ctx<'a> {
    netlist: &'a Netlist,
    origx: &'a [f64],
    origy: &'a [f64],
    config: &'a SpreadConfig,
}

fn bisect(
    ctx: &Ctx<'_>,
    cells: &mut [u32],
    rect: Rect,
    depth: usize,
    xs: &mut [f64],
    ys: &mut [f64],
) {
    let total_area: f64 =
        cells.iter().map(|&c| ctx.netlist.cell_area(gtl_netlist::CellId::from(c))).sum();

    // Leaf: few cells, loose region, or depth guard.
    let loose = total_area <= rect.area() * ctx.config.target_utilization
        && cells.len() <= ctx.config.leaf_cells * 4;
    if cells.len() <= ctx.config.leaf_cells || depth >= ctx.config.max_depth || loose {
        place_leaf(ctx, cells, rect, xs, ys);
        return;
    }

    // Split along the longer axis at the area median.
    let horizontal = rect.width() >= rect.height();
    if horizontal {
        cells.sort_by(|&a, &b| {
            ctx.origx[a as usize].total_cmp(&ctx.origx[b as usize]).then(a.cmp(&b))
        });
    } else {
        cells.sort_by(|&a, &b| {
            ctx.origy[a as usize].total_cmp(&ctx.origy[b as usize]).then(a.cmp(&b))
        });
    }
    let mut acc = 0.0;
    let mut split = cells.len() / 2;
    for (i, &c) in cells.iter().enumerate() {
        acc += ctx.netlist.cell_area(gtl_netlist::CellId::from(c));
        if acc >= total_area / 2.0 {
            split = (i + 1).min(cells.len() - 1).max(1);
            break;
        }
    }
    let (left, right) = cells.split_at_mut(split);
    let (ra, rb) = if horizontal {
        let xm = rect.x0 + rect.width() / 2.0;
        (Rect { x1: xm, ..rect }, Rect { x0: xm, ..rect })
    } else {
        let ym = rect.y0 + rect.height() / 2.0;
        (Rect { y1: ym, ..rect }, Rect { y0: ym, ..rect })
    };
    bisect(ctx, left, ra, depth + 1, xs, ys);
    bisect(ctx, right, rb, depth + 1, xs, ys);
}

/// Lays leaf cells on a uniform grid inside `rect`, preserving the
/// cells' relative (y, x) order.
fn place_leaf(ctx: &Ctx<'_>, cells: &mut [u32], rect: Rect, xs: &mut [f64], ys: &mut [f64]) {
    if cells.is_empty() {
        return;
    }
    cells.sort_by(|&a, &b| {
        ctx.origy[a as usize]
            .total_cmp(&ctx.origy[b as usize])
            .then(ctx.origx[a as usize].total_cmp(&ctx.origx[b as usize]))
            .then(a.cmp(&b))
    });
    let n = cells.len();
    let aspect = (rect.width() / rect.height().max(1e-12)).max(1e-6);
    let cols = ((n as f64 * aspect).sqrt().ceil() as usize).clamp(1, n);
    let rows = n.div_ceil(cols);
    for (i, &c) in cells.iter().enumerate() {
        let (r, col) = (i / cols, i % cols);
        // Within a row, order cells by x for minimal warping.
        xs[c as usize] = rect.x0 + (col as f64 + 0.5) / cols as f64 * rect.width();
        ys[c as usize] = rect.y0 + (r as f64 + 0.5) / rows as f64 * rect.height();
    }
    // Re-sort each row segment by original x so left cells stay left.
    for r in 0..rows {
        let lo = r * cols;
        let hi = ((r + 1) * cols).min(n);
        let mut row: Vec<u32> = cells[lo..hi].to_vec();
        row.sort_by(|&a, &b| {
            ctx.origx[a as usize].total_cmp(&ctx.origx[b as usize]).then(a.cmp(&b))
        });
        for (j, &c) in row.iter().enumerate() {
            xs[c as usize] = rect.x0 + (j as f64 + 0.5) / (hi - lo) as f64 * rect.width();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellId, NetlistBuilder};

    fn uniform_netlist(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(n);
        b.finish()
    }

    #[test]
    fn density_map_counts_areas() {
        let nl = uniform_netlist(4);
        let die = Die { width: 10.0, height: 10.0, rows: 10 };
        let p = Placement::from_coords(vec![1.0; 4], vec![1.0; 4]);
        let map = DensityMap::compute(&nl, &p, &die, 2);
        assert!((map.utilization(0, 0) - 4.0 / 25.0).abs() < 1e-12);
        assert_eq!(map.utilization(1, 1), 0.0);
        assert!(map.max_utilization() > map.mean_utilization());
    }

    #[test]
    fn spreading_reduces_peak_density() {
        let n = 400;
        let nl = uniform_netlist(n);
        let die = Die { width: 40.0, height: 40.0, rows: 40 };
        // Everything piled in one corner.
        let p = Placement::from_coords(vec![2.0; n], vec![2.0; n]);
        let before = DensityMap::compute(&nl, &p, &die, 8).max_utilization();
        let spread_p = spread(&nl, &p, &die, &SpreadConfig::default());
        let after = DensityMap::compute(&nl, &spread_p, &die, 8).max_utilization();
        assert!(after < before / 4.0, "peak {before} → {after}");
    }

    #[test]
    fn spreading_keeps_cells_in_die() {
        let n = 100;
        let nl = uniform_netlist(n);
        let die = Die { width: 10.0, height: 10.0, rows: 10 };
        let p = Placement::from_coords(vec![9.9; n], vec![9.9; n]);
        let s = spread(&nl, &p, &die, &SpreadConfig::default());
        for c in nl.cells() {
            let (x, y) = s.position(c);
            assert!((0.0..=10.0).contains(&x) && (0.0..=10.0).contains(&y));
        }
    }

    #[test]
    fn stacked_clusters_separate_coherently() {
        // Two groups of contiguous ids stacked at the same point must end
        // up in (mostly) disjoint regions, not interleaved.
        let n = 200;
        let nl = uniform_netlist(n);
        let die = Die { width: 20.0, height: 20.0, rows: 20 };
        let p = Placement::from_coords(vec![10.0; n], vec![10.0; n]);
        let s = spread(&nl, &p, &die, &SpreadConfig::default());
        let centroid = |range: std::ops::Range<usize>| {
            let mut cx = 0.0;
            let mut cy = 0.0;
            for i in range.clone() {
                let (x, y) = s.position(CellId::new(i));
                cx += x;
                cy += y;
            }
            (cx / range.len() as f64, cy / range.len() as f64)
        };
        let (ax, ay) = centroid(0..100);
        let (bx, by) = centroid(100..200);
        let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        assert!(dist > 5.0, "cluster centroids only {dist:.2} apart");
    }

    #[test]
    fn order_preserved_along_x() {
        // Cells on a line keep their left-to-right order after spreading.
        let n = 64;
        let nl = uniform_netlist(n);
        let die = Die { width: 64.0, height: 64.0, rows: 64 };
        let xs: Vec<f64> = (0..n).map(|i| 20.0 + i as f64 * 0.01).collect();
        let ys = vec![32.0; n];
        let p = Placement::from_coords(xs, ys);
        let s = spread(&nl, &p, &die, &SpreadConfig::default());
        // Compare x-order of the extreme cells.
        let first = s.position(CellId::new(0)).0;
        let last = s.position(CellId::new(n - 1)).0;
        assert!(first < last, "order flipped: {first} vs {last}");
    }

    #[test]
    fn already_uniform_placement_stays_bounded() {
        let n = 64;
        let nl = uniform_netlist(n);
        let die = Die { width: 40.0, height: 40.0, rows: 40 };
        let xs: Vec<f64> = (0..n).map(|i| (i % 8) as f64 * 5.0 + 2.5).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i / 8) as f64 * 5.0 + 2.5).collect();
        let p = Placement::from_coords(xs, ys);
        let s = spread(&nl, &p, &die, &SpreadConfig::default());
        // Max displacement stays within a couple of grid pitches.
        for c in nl.cells() {
            let (x0, y0) = p.position(c);
            let (x1, y1) = s.position(c);
            let d = (x1 - x0).abs() + (y1 - y0).abs();
            assert!(d < 15.0, "cell {c} moved {d}");
        }
    }

    #[test]
    fn deterministic() {
        let n = 150;
        let nl = uniform_netlist(n);
        let die = Die { width: 15.0, height: 15.0, rows: 15 };
        let p = Placement::from_coords(vec![7.0; n], vec![7.0; n]);
        let a = spread(&nl, &p, &die, &SpreadConfig::default());
        let b = spread(&nl, &p, &die, &SpreadConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_netlist() {
        let nl = uniform_netlist(0);
        let die = Die { width: 1.0, height: 1.0, rows: 1 };
        let p = Placement::from_coords(vec![], vec![]);
        let s = spread(&nl, &p, &die, &SpreadConfig::default());
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "bin out of range")]
    fn density_map_bounds() {
        let nl = uniform_netlist(1);
        let die = Die { width: 4.0, height: 4.0, rows: 4 };
        let p = Placement::from_coords(vec![0.0], vec![0.0]);
        let map = DensityMap::compute(&nl, &p, &die, 2);
        let _ = map.utilization(2, 0);
    }
}
