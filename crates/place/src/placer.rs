//! The top-level anchored quadratic placer.

use gtl_netlist::{CellId, Netlist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::quadratic::Laplacian;
use crate::spread::{spread, SpreadConfig};
use crate::Die;

/// Cell positions, indexed by [`CellId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Placement {
    /// Builds a placement from coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ.
    pub fn from_coords(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate vectors must match");
        Self { xs, ys }
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    #[inline]
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        (self.xs[cell.index()], self.ys[cell.index()])
    }

    /// Overwrites the position of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    #[inline]
    pub fn set_position(&mut self, cell: CellId, x: f64, y: f64) {
        self.xs[cell.index()] = x;
        self.ys[cell.index()] = y;
    }

    /// All x coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// All y coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Configuration of the global placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerConfig {
    /// Solve/spread iterations.
    pub iterations: usize,
    /// Initial anchor weight α (grows geometrically each iteration).
    pub anchor_start: f64,
    /// Multiplier applied to α per iteration.
    pub anchor_growth: f64,
    /// CG tolerance.
    pub tolerance: f64,
    /// CG iteration cap per solve.
    pub max_cg_iterations: usize,
    /// Anchor boost applied in the epilogue solve (the final spread is
    /// re-solved with `α × anchor_final_boost` so density wins at the end
    /// while connected groups stay locally tight).
    pub anchor_final_boost: f64,
    /// Spreading parameters.
    pub spread: SpreadConfig,
    /// Seed for the initial random placement.
    pub seed: u64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            anchor_start: 0.02,
            anchor_growth: 1.6,
            tolerance: 1e-6,
            max_cg_iterations: 300,
            anchor_final_boost: 30.0,
            spread: SpreadConfig::default(),
            seed: 0x91ace,
        }
    }
}

/// Places `netlist` on `die` with anchored quadratic iterations
/// (SimPL-style): solve `(L + αI)x = α·x_spread`, spread the result, grow
/// α, repeat. Highly connected groups stay clustered (which is exactly how
/// GTLs turn into hotspots); spreading keeps densities bounded.
///
/// The result is a *global* placement; run
/// [`legal::legalize`](crate::legal::legalize) for row-snapped positions.
///
/// # Panics
///
/// Panics if the netlist has no cells.
pub fn place(netlist: &Netlist, die: &Die, config: &PlacerConfig) -> Placement {
    assert!(netlist.num_cells() > 0, "cannot place an empty netlist");
    let n = netlist.num_cells();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Initial positions: uniform random.
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..die.width)).collect();
    let mut ys: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..die.height)).collect();

    let lap = Laplacian::build(netlist);
    let mut alpha = config.anchor_start;

    for _ in 0..config.iterations {
        // Spread current positions to produce anchor targets.
        let spread_p =
            spread(netlist, &Placement::from_coords(xs.clone(), ys.clone()), die, &config.spread);

        let anchor = vec![alpha; n];
        let rhs_x: Vec<f64> = spread_p.xs().iter().map(|&t| alpha * t).collect();
        let rhs_y: Vec<f64> = spread_p.ys().iter().map(|&t| alpha * t).collect();
        let (nx, _) =
            lap.solve_anchored(&anchor, &rhs_x, &xs, config.tolerance, config.max_cg_iterations);
        let (ny, _) =
            lap.solve_anchored(&anchor, &rhs_y, &ys, config.tolerance, config.max_cg_iterations);
        xs = nx;
        ys = ny;
        for i in 0..n {
            let (cx, cy) = die.clamp(xs[i], ys[i]);
            xs[i] = cx;
            ys[i] = cy;
        }
        alpha *= config.anchor_growth;
    }

    // Epilogue: spread once more, then re-solve with a strongly boosted
    // anchor. Density wins globally (dense groups stay where spreading put
    // them instead of re-collapsing onto the die center), while connected
    // groups remain locally tight — the clustering-versus-congestion
    // trade-off the tangled-logic experiments study.
    let spread_p =
        spread(netlist, &Placement::from_coords(xs.clone(), ys.clone()), die, &config.spread);
    let alpha_final = alpha * config.anchor_final_boost;
    let anchor = vec![alpha_final; n];
    let rhs_x: Vec<f64> = spread_p.xs().iter().map(|&t| alpha_final * t).collect();
    let rhs_y: Vec<f64> = spread_p.ys().iter().map(|&t| alpha_final * t).collect();
    let (mut fx, _) =
        lap.solve_anchored(&anchor, &rhs_x, &xs, config.tolerance, config.max_cg_iterations);
    let (mut fy, _) =
        lap.solve_anchored(&anchor, &rhs_y, &ys, config.tolerance, config.max_cg_iterations);
    for i in 0..n {
        let (cx, cy) = die.clamp(fx[i], fy[i]);
        fx[i] = cx;
        fy[i] = cy;
    }
    Placement::from_coords(fx, fy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpwl;
    use gtl_netlist::NetlistBuilder;

    /// Two 12-cell cliques plus sparse filler.
    fn clustered_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..200).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for base in [0usize, 12] {
            for i in 0..12 {
                for j in (i + 1)..12 {
                    b.add_anonymous_net([cells[base + i], cells[base + j]]);
                }
            }
        }
        for i in 24..199 {
            b.add_anonymous_net([cells[i], cells[i + 1]]);
        }
        b.add_anonymous_net([cells[0], cells[100]]);
        b.add_anonymous_net([cells[12], cells[150]]);
        b.finish()
    }

    #[test]
    fn placer_beats_random_hpwl() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let placed = place(&nl, &die, &PlacerConfig::default());
        // Random baseline with the same seed scheme.
        let mut rng = SmallRng::seed_from_u64(1);
        let rx: Vec<f64> = (0..nl.num_cells()).map(|_| rng.gen_range(0.0..die.width)).collect();
        let ry: Vec<f64> = (0..nl.num_cells()).map(|_| rng.gen_range(0.0..die.height)).collect();
        let random = Placement::from_coords(rx, ry);
        let hp = hpwl(&nl, &placed);
        let hr = hpwl(&nl, &random);
        assert!(hp < 0.6 * hr, "placed {hp} vs random {hr}");
    }

    #[test]
    fn connected_cluster_stays_together() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let placed = place(&nl, &die, &PlacerConfig::default());
        // The 12-clique's spatial spread must be far below the die size.
        let xs: Vec<f64> =
            (0..12).map(|i| placed.position(gtl_netlist::CellId::new(i)).0).collect();
        let ys: Vec<f64> =
            (0..12).map(|i| placed.position(gtl_netlist::CellId::new(i)).1).collect();
        let w = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let h = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(w < die.width / 2.0 && h < die.height / 2.0, "clique spread {w}×{h}");
    }

    #[test]
    fn all_cells_inside_die() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.7);
        let placed = place(&nl, &die, &PlacerConfig::default());
        for c in nl.cells() {
            let (x, y) = placed.position(c);
            assert!(x >= 0.0 && x <= die.width && y >= 0.0 && y <= die.height);
        }
    }

    #[test]
    fn deterministic() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let a = place(&nl, &die, &PlacerConfig::default());
        let b = place(&nl, &die, &PlacerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty netlist")]
    fn empty_netlist_panics() {
        let nl = NetlistBuilder::new().finish();
        let die = Die { width: 1.0, height: 1.0, rows: 1 };
        let _ = place(&nl, &die, &PlacerConfig::default());
    }

    #[test]
    fn placement_accessors() {
        let p = Placement::from_coords(vec![1.0, 2.0], vec![3.0, 4.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.position(CellId::new(1)), (2.0, 4.0));
        assert_eq!(p.xs(), &[1.0, 2.0]);
    }
}
