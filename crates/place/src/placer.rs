//! The top-level anchored quadratic placer, sharded onto
//! [`gtl_core::exec`].
//!
//! Each solve/spread iteration decomposes the die into a deterministic
//! [`ShardGrid`] of regions (cells are binned by their spread-target
//! position), solves every shard's anchored system concurrently through
//! [`parallel_map_with`] — one reusable [`ShardSolver`] per worker — and
//! stitches the shards back together with a fixed-order boundary anchor
//! pass. The decomposition depends only on the netlist, die and config
//! (never on the worker count), so placements are byte-identical for any
//! thread count; see `crates/place/tests/determinism.rs`.

use gtl_core::cancel::{CancelToken, Cancelled};
use gtl_core::exec::{derive_stream, parallel_map_chunked_with, Granularity};
use gtl_core::shard::{auto_grid, ShardGrid};
use gtl_netlist::{CellId, Netlist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::quadratic::{Laplacian, LaplacianScratch, ShardSolver, SolveScratch};
use crate::spread::{spread, SpreadConfig};
use crate::Die;

/// Auto-sharding aims at roughly this many cells per shard; below it the
/// die stays a single shard and the placer degenerates to the global
/// solve.
const SHARD_TARGET_CELLS: usize = 10_000;

/// Hard cap on the auto-sized shard grid side.
const MAX_SHARD_GRID: usize = 16;

/// Fixed-order Gauss–Seidel sweeps over shard-boundary cells after each
/// sharded solve.
const BOUNDARY_SWEEPS: usize = 2;

/// Relative amplitude of the per-shard anchor-target jitter (scaled by the
/// die side). Far below the CG tolerance; only decorrelates exactly
/// coincident targets produced by the gridded spreader.
const TARGET_JITTER: f64 = 1e-12;

/// Cell positions, indexed by [`CellId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl Placement {
    /// Builds a placement from coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ.
    pub fn from_coords(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate vectors must match");
        Self { xs, ys }
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    #[inline]
    pub fn position(&self, cell: CellId) -> (f64, f64) {
        (self.xs[cell.index()], self.ys[cell.index()])
    }

    /// Overwrites the position of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    #[inline]
    pub fn set_position(&mut self, cell: CellId, x: f64, y: f64) {
        self.xs[cell.index()] = x;
        self.ys[cell.index()] = y;
    }

    /// All x coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// All y coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Configuration of the global placer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacerConfig {
    /// Solve/spread iterations.
    pub iterations: usize,
    /// Initial anchor weight α (grows geometrically each iteration).
    pub anchor_start: f64,
    /// Multiplier applied to α per iteration.
    pub anchor_growth: f64,
    /// CG tolerance.
    pub tolerance: f64,
    /// CG iteration cap per solve.
    pub max_cg_iterations: usize,
    /// Anchor boost applied in the epilogue solve (the final spread is
    /// re-solved with `α × anchor_final_boost` so density wins at the end
    /// while connected groups stay locally tight).
    pub anchor_final_boost: f64,
    /// Spreading parameters.
    pub spread: SpreadConfig,
    /// Seed for the initial random placement (and, via
    /// [`derive_stream`], for every per-shard stream).
    pub seed: u64,
    /// Worker threads for the sharded solves; `0` means all cores. The
    /// placement is byte-identical for every value.
    pub threads: usize,
    /// Region-decomposition grid side `g` (the die splits into `g × g`
    /// shards). `0` auto-sizes toward ~10k cells per shard; `1` forces the
    /// single-shard (global) solve.
    pub shard_grid: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            anchor_start: 0.02,
            anchor_growth: 1.6,
            tolerance: 1e-6,
            max_cg_iterations: 300,
            anchor_final_boost: 30.0,
            spread: SpreadConfig::default(),
            seed: 0x91ace,
            threads: 0,
            shard_grid: 0,
        }
    }
}

impl PlacerConfig {
    /// The shard-grid side actually used for an `n`-cell design: the
    /// explicit [`PlacerConfig::shard_grid`], or the auto-sized grid.
    pub fn resolved_shard_grid(&self, n: usize) -> usize {
        if self.shard_grid == 0 {
            auto_grid(n, SHARD_TARGET_CELLS, MAX_SHARD_GRID)
        } else {
            self.shard_grid
        }
    }
}

/// Places `netlist` on `die` with anchored quadratic iterations
/// (SimPL-style): solve `(L + αI)x = α·x_spread`, spread the result, grow
/// α, repeat. Highly connected groups stay clustered (which is exactly how
/// GTLs turn into hotspots); spreading keeps densities bounded.
///
/// Every solve runs through the deterministic execution layer: the die is
/// decomposed into [`PlacerConfig::shard_grid`]² region shards whose
/// systems are solved concurrently (out-of-shard neighbors held fixed),
/// then shard-boundary cells are reconciled by a fixed-order Gauss–Seidel
/// anchor pass. A 1×1 grid degenerates to the exact global solve. Either
/// way the output does not depend on [`PlacerConfig::threads`].
///
/// The result is a *global* placement; run
/// [`legal::legalize`](crate::legal::legalize) for row-snapped positions.
///
/// # Panics
///
/// Panics if the netlist has no cells.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::{place, Die, PlacerConfig};
///
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..16).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// for i in 0..15 {
///     b.add_anonymous_net([cells[i], cells[i + 1]]);
/// }
/// let nl = b.finish();
/// let die = Die::for_netlist(&nl, 0.5);
/// let placement = place(&nl, &die, &PlacerConfig::default());
/// assert_eq!(placement.len(), 16);
/// let (x, y) = placement.position(cells[0]);
/// assert!(x >= 0.0 && x <= die.width && y >= 0.0 && y <= die.height);
/// ```
pub fn place(netlist: &Netlist, die: &Die, config: &PlacerConfig) -> Placement {
    match place_impl(netlist, die, config, None, &mut PlaceScratch::default()) {
        Ok(placement) => placement,
        Err(_) => unreachable!("a placement without a token cannot be cancelled"),
    }
}

/// [`place`] polling `token` between solve/spread iterations: a fired
/// token makes the run return [`Cancelled`] at the next iteration
/// boundary (the checkpoint interval is one anchored solve + spread). A
/// token that never fires yields a placement identical to [`place`]
/// (same code path).
///
/// # Errors
///
/// [`Cancelled`] once the token fires.
///
/// # Panics
///
/// Panics if the netlist has no cells, like [`place`].
pub fn place_cancellable(
    netlist: &Netlist,
    die: &Die,
    config: &PlacerConfig,
    token: &CancelToken,
) -> Result<Placement, Cancelled> {
    place_impl(netlist, die, config, Some(token), &mut PlaceScratch::default())
}

/// Reusable cross-request scratch for [`place_cancellable_with_scratch`]:
/// today the Laplacian build's triplet buffers. A long-lived caller (the
/// serving session) holds one per session so repeated placements of the
/// same netlist stop reallocating the `O(pins)` CSR intermediate.
#[derive(Debug, Default)]
pub struct PlaceScratch {
    laplacian: LaplacianScratch,
}

impl PlaceScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`place_cancellable`] reusing caller-owned [`PlaceScratch`]. The
/// placement is identical to [`place_cancellable`] — scratch contents on
/// entry are ignored.
///
/// # Errors
///
/// [`Cancelled`] once the token fires.
///
/// # Panics
///
/// Panics if the netlist has no cells, like [`place`].
pub fn place_cancellable_with_scratch(
    netlist: &Netlist,
    die: &Die,
    config: &PlacerConfig,
    token: &CancelToken,
    scratch: &mut PlaceScratch,
) -> Result<Placement, Cancelled> {
    place_impl(netlist, die, config, Some(token), scratch)
}

/// The shared placer loop behind [`place`] and [`place_cancellable`].
fn place_impl(
    netlist: &Netlist,
    die: &Die,
    config: &PlacerConfig,
    token: Option<&CancelToken>,
    scratch: &mut PlaceScratch,
) -> Result<Placement, Cancelled> {
    assert!(netlist.num_cells() > 0, "cannot place an empty netlist");
    let checkpoint = gtl_core::cancel::checkpoint;
    let n = netlist.num_cells();
    // gtl-lint: allow(no-rng-outside-derive-stream, reason = "single sequential master stream for initial positions; nothing fans out from it")
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Initial positions: uniform random.
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..die.width)).collect();
    let mut ys: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..die.height)).collect();

    let lap = Laplacian::build_with(netlist, &mut scratch.laplacian);
    let grid_side = config.resolved_shard_grid(n);
    let mut alpha = config.anchor_start;

    for _ in 0..config.iterations {
        checkpoint(token)?;
        // Spread current positions to produce anchor targets.
        let spread_p =
            spread(netlist, &Placement::from_coords(xs.clone(), ys.clone()), die, &config.spread);
        solve_pass(&lap, die, config, grid_side, alpha, &spread_p, &mut xs, &mut ys);
        alpha *= config.anchor_growth;
    }

    checkpoint(token)?;
    // Epilogue: spread once more, then re-solve with a strongly boosted
    // anchor. Density wins globally (dense groups stay where spreading put
    // them instead of re-collapsing onto the die center), while connected
    // groups remain locally tight — the clustering-versus-congestion
    // trade-off the tangled-logic experiments study.
    let spread_p =
        spread(netlist, &Placement::from_coords(xs.clone(), ys.clone()), die, &config.spread);
    let alpha_final = alpha * config.anchor_final_boost;
    solve_pass(&lap, die, config, grid_side, alpha_final, &spread_p, &mut xs, &mut ys);
    Ok(Placement::from_coords(xs, ys))
}

/// One anchored solve toward `targets`, sharded when `grid_side > 1`,
/// followed by the in-die clamp. Updates `xs`/`ys` in place.
#[allow(clippy::too_many_arguments)]
fn solve_pass(
    lap: &Laplacian,
    die: &Die,
    config: &PlacerConfig,
    grid_side: usize,
    alpha: f64,
    targets: &Placement,
    xs: &mut Vec<f64>,
    ys: &mut Vec<f64>,
) {
    let n = lap.dim();
    if grid_side <= 1 {
        // Global solve; the two axes are independent work items. Each
        // worker keeps one set of CG work vectors and one rhs buffer, so
        // the only per-solve allocation is the returned solution.
        let (xs_now, ys_now): (&[f64], &[f64]) = (xs, ys);
        let anchor = vec![alpha; n];
        let mut solved = parallel_map_chunked_with(
            config.threads,
            2,
            Granularity::Auto,
            |_worker| (SolveScratch::new(), Vec::new()),
            |(scratch, rhs), axis| {
                let (t, pos) =
                    if axis == 0 { (targets.xs(), xs_now) } else { (targets.ys(), ys_now) };
                rhs.clear();
                rhs.extend(t.iter().map(|&t| alpha * t));
                let mut x = pos.to_vec();
                lap.solve_anchored_into(
                    &anchor,
                    rhs,
                    &mut x,
                    config.tolerance,
                    config.max_cg_iterations,
                    scratch,
                );
                x
            },
        );
        *ys = solved.pop().expect("y axis solved");
        *xs = solved.pop().expect("x axis solved");
    } else {
        // Region decomposition: bin cells by their spread-target position
        // (targets are density-balanced, so shards are too). The partition
        // is a pure function of the targets — never of the thread count.
        let grid = ShardGrid::square(grid_side, die.width, die.height);
        let shards = grid.partition(targets.xs(), targets.ys());
        let jitter = TARGET_JITTER * die.width.max(die.height);
        let (xs_now, ys_now): (&[f64], &[f64]) = (xs, ys);

        let solved: Vec<(Vec<f64>, Vec<f64>)> = parallel_map_chunked_with(
            config.threads,
            shards.len(),
            Granularity::Auto,
            |_worker| (ShardSolver::new(n), Vec::new(), Vec::new()),
            |(solver, tx, ty), s| {
                let cells = &shards[s];
                if cells.is_empty() {
                    return (Vec::new(), Vec::new());
                }
                // Per-shard RNG stream: decorrelates exactly coincident
                // targets (the gridded spreader emits many) so each
                // shard's system is canonically perturbed, independent of
                // scheduling.
                let mut rng = SmallRng::seed_from_u64(derive_stream(config.seed, s as u64));
                tx.clear();
                ty.clear();
                for &c in cells {
                    tx.push(targets.xs()[c as usize] + jitter * rng.gen_range(-0.5..0.5));
                    ty.push(targets.ys()[c as usize] + jitter * rng.gen_range(-0.5..0.5));
                }
                solver.solve_shard(
                    lap,
                    cells,
                    alpha,
                    tx,
                    ty,
                    xs_now,
                    ys_now,
                    config.tolerance,
                    config.max_cg_iterations,
                )
            },
        );

        // Stitch shard results back in fixed shard-then-cell order.
        let mut shard_of = vec![0u32; n];
        for (s, cells) in shards.iter().enumerate() {
            for &c in cells {
                shard_of[c as usize] = s as u32;
            }
        }
        for (s, (sx, sy)) in solved.iter().enumerate() {
            for (k, &c) in shards[s].iter().enumerate() {
                xs[c as usize] = sx[k];
                ys[c as usize] = sy[k];
            }
        }

        // Fixed-order boundary anchor pass: cells with a neighbor in
        // another shard were solved against stale neighbor positions;
        // relax them (ascending cell id, serial, deterministic) against
        // the freshly stitched coordinates. Each update is the exact
        // stationarity condition of the global system at that cell.
        let boundary: Vec<usize> =
            (0..n).filter(|&i| lap.row(i).any(|(j, _)| shard_of[j] != shard_of[i])).collect();
        for _ in 0..BOUNDARY_SWEEPS {
            for &i in &boundary {
                let (mut acc_x, mut acc_y) = (0.0, 0.0);
                for (j, w) in lap.row(i) {
                    acc_x += w * xs[j];
                    acc_y += w * ys[j];
                }
                let denom = lap.degree(i) + alpha;
                xs[i] = (alpha * targets.xs()[i] + acc_x) / denom;
                ys[i] = (alpha * targets.ys()[i] + acc_y) / denom;
            }
        }
    }

    for i in 0..n {
        let (cx, cy) = die.clamp(xs[i], ys[i]);
        xs[i] = cx;
        ys[i] = cy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpwl;
    use gtl_netlist::NetlistBuilder;

    /// Two 12-cell cliques plus sparse filler.
    fn clustered_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..200).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for base in [0usize, 12] {
            for i in 0..12 {
                for j in (i + 1)..12 {
                    b.add_anonymous_net([cells[base + i], cells[base + j]]);
                }
            }
        }
        for i in 24..199 {
            b.add_anonymous_net([cells[i], cells[i + 1]]);
        }
        b.add_anonymous_net([cells[0], cells[100]]);
        b.add_anonymous_net([cells[12], cells[150]]);
        b.finish()
    }

    #[test]
    fn placer_beats_random_hpwl() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let placed = place(&nl, &die, &PlacerConfig::default());
        // Random baseline with the same seed scheme.
        let mut rng = SmallRng::seed_from_u64(1);
        let rx: Vec<f64> = (0..nl.num_cells()).map(|_| rng.gen_range(0.0..die.width)).collect();
        let ry: Vec<f64> = (0..nl.num_cells()).map(|_| rng.gen_range(0.0..die.height)).collect();
        let random = Placement::from_coords(rx, ry);
        let hp = hpwl(&nl, &placed);
        let hr = hpwl(&nl, &random);
        assert!(hp < 0.6 * hr, "placed {hp} vs random {hr}");
    }

    #[test]
    fn connected_cluster_stays_together() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let placed = place(&nl, &die, &PlacerConfig::default());
        // The 12-clique's spatial spread must be far below the die size.
        let xs: Vec<f64> =
            (0..12).map(|i| placed.position(gtl_netlist::CellId::new(i)).0).collect();
        let ys: Vec<f64> =
            (0..12).map(|i| placed.position(gtl_netlist::CellId::new(i)).1).collect();
        let w = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let h = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(w < die.width / 2.0 && h < die.height / 2.0, "clique spread {w}×{h}");
    }

    #[test]
    fn all_cells_inside_die() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.7);
        let placed = place(&nl, &die, &PlacerConfig::default());
        for c in nl.cells() {
            let (x, y) = placed.position(c);
            assert!(x >= 0.0 && x <= die.width && y >= 0.0 && y <= die.height);
        }
    }

    #[test]
    fn deterministic() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let a = place(&nl, &die, &PlacerConfig::default());
        let b = place(&nl, &die, &PlacerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn cancellable_place_with_live_token_is_identical() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let plain = place(&nl, &die, &PlacerConfig::default());
        let token = CancelToken::new();
        let cancellable = place_cancellable(&nl, &die, &PlacerConfig::default(), &token).unwrap();
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn place_scratch_reuse_is_invisible() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let plain = place(&nl, &die, &PlacerConfig::default());
        let token = CancelToken::new();
        let mut scratch = PlaceScratch::new();
        let cfg = PlacerConfig::default();
        let first = place_cancellable_with_scratch(&nl, &die, &cfg, &token, &mut scratch).unwrap();
        let second = place_cancellable_with_scratch(&nl, &die, &cfg, &token, &mut scratch).unwrap();
        assert_eq!(plain, first);
        assert_eq!(plain, second);
    }

    #[test]
    fn cancelled_place_returns_structured_error() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let token = CancelToken::new();
        token.cancel();
        let err = place_cancellable(&nl, &die, &PlacerConfig::default(), &token).unwrap_err();
        assert_eq!(err.reason, gtl_core::cancel::CancelReason::Cancelled);
    }

    #[test]
    fn expired_deadline_stops_the_placer() {
        let nl = clustered_netlist();
        let die = Die::for_netlist(&nl, 0.5);
        let token =
            CancelToken::with_deadline(gtl_core::cancel::Deadline::at(std::time::Instant::now()));
        let err = place_cancellable(&nl, &die, &PlacerConfig::default(), &token).unwrap_err();
        assert_eq!(err.reason, gtl_core::cancel::CancelReason::DeadlineExceeded);
    }

    #[test]
    #[should_panic(expected = "empty netlist")]
    fn empty_netlist_panics() {
        let nl = NetlistBuilder::new().finish();
        let die = Die { width: 1.0, height: 1.0, rows: 1 };
        let _ = place(&nl, &die, &PlacerConfig::default());
    }

    #[test]
    fn placement_accessors() {
        let p = Placement::from_coords(vec![1.0, 2.0], vec![3.0, 4.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.position(CellId::new(1)), (2.0, 4.0));
        assert_eq!(p.xs(), &[1.0, 2.0]);
    }
}
