//! Per-net wirelength models: HPWL, star, and rectilinear MST.
//!
//! Congestion and placement quality are both wirelength stories, and the
//! model choice matters: HPWL underestimates multi-pin nets, a star
//! overestimates them, and the rectilinear minimum spanning tree (Prim on
//! Manhattan distances) is the standard ~fair estimate (within 1.5× of the
//! optimal Steiner tree). The module also produces per-net reports used
//! to attribute wirelength to GTLs versus background logic.

use gtl_netlist::{NetId, Netlist};

use crate::Placement;

/// Wirelength model selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WirelengthModel {
    /// Half-perimeter of the pin bounding box.
    #[default]
    Hpwl,
    /// Sum of Manhattan distances from every pin to the pin centroid.
    Star,
    /// Rectilinear minimum spanning tree over the pins (Prim).
    Mst,
}

/// Wirelength of one net under `model`.
///
/// Returns `0.0` for nets with fewer than 2 pins.
///
/// # Panics
///
/// Panics if the placement does not cover the net's pins.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::wirelength::{net_wirelength, WirelengthModel};
/// use gtl_place::Placement;
///
/// let mut b = NetlistBuilder::new();
/// let x = b.add_cell("x", 1.0);
/// let y = b.add_cell("y", 1.0);
/// let z = b.add_cell("z", 1.0);
/// let n = b.add_net("n", [x, y, z]);
/// let nl = b.finish();
/// // L-shaped pin arrangement.
/// let p = Placement::from_coords(vec![0.0, 4.0, 0.0], vec![0.0, 0.0, 3.0]);
/// assert_eq!(net_wirelength(&nl, &p, n, WirelengthModel::Hpwl), 7.0);
/// assert_eq!(net_wirelength(&nl, &p, n, WirelengthModel::Mst), 7.0);
/// ```
pub fn net_wirelength(
    netlist: &Netlist,
    placement: &Placement,
    net: NetId,
    model: WirelengthModel,
) -> f64 {
    let cells = netlist.net_cells(net);
    if cells.len() < 2 {
        return 0.0;
    }
    match model {
        WirelengthModel::Hpwl => {
            let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
            for &c in cells {
                let (x, y) = placement.position(c);
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
            (x1 - x0) + (y1 - y0)
        }
        WirelengthModel::Star => {
            let n = cells.len() as f64;
            let (mut cx, mut cy) = (0.0, 0.0);
            for &c in cells {
                let (x, y) = placement.position(c);
                cx += x;
                cy += y;
            }
            cx /= n;
            cy /= n;
            cells
                .iter()
                .map(|&c| {
                    let (x, y) = placement.position(c);
                    (x - cx).abs() + (y - cy).abs()
                })
                .sum()
        }
        WirelengthModel::Mst => {
            // Prim over Manhattan distances, O(pins²) — nets are small.
            let pts: Vec<(f64, f64)> = cells.iter().map(|&c| placement.position(c)).collect();
            let mut in_tree = vec![false; pts.len()];
            let mut best = vec![f64::INFINITY; pts.len()];
            in_tree[0] = true;
            for (i, p) in pts.iter().enumerate().skip(1) {
                best[i] = (p.0 - pts[0].0).abs() + (p.1 - pts[0].1).abs();
            }
            let mut total = 0.0;
            for _ in 1..pts.len() {
                let mut pick = usize::MAX;
                let mut d = f64::INFINITY;
                for i in 0..pts.len() {
                    if !in_tree[i] && best[i] < d {
                        d = best[i];
                        pick = i;
                    }
                }
                total += d;
                in_tree[pick] = true;
                for i in 0..pts.len() {
                    if !in_tree[i] {
                        let nd = (pts[i].0 - pts[pick].0).abs() + (pts[i].1 - pts[pick].1).abs();
                        best[i] = best[i].min(nd);
                    }
                }
            }
            total
        }
    }
}

/// Total wirelength of the design under `model`.
///
/// # Panics
///
/// Panics if the placement does not cover the netlist.
pub fn total_wirelength(netlist: &Netlist, placement: &Placement, model: WirelengthModel) -> f64 {
    netlist.nets().map(|n| net_wirelength(netlist, placement, n, model)).sum()
}

/// Per-net wirelength report, sorted longest first — the "which nets hurt"
/// view used when attributing congestion to structures.
pub fn longest_nets(
    netlist: &Netlist,
    placement: &Placement,
    model: WirelengthModel,
    top: usize,
) -> Vec<(NetId, f64)> {
    let mut all: Vec<(NetId, f64)> =
        netlist.nets().map(|n| (n, net_wirelength(netlist, placement, n, model))).collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(top);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn net_of(points: &[(f64, f64)]) -> (Netlist, Placement, NetId) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..points.len()).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        let n = b.add_anonymous_net(cells.iter().copied());
        let nl = b.finish();
        let p = Placement::from_coords(
            points.iter().map(|p| p.0).collect(),
            points.iter().map(|p| p.1).collect(),
        );
        (nl, p, n)
    }

    #[test]
    fn two_pin_all_models_agree() {
        let (nl, p, n) = net_of(&[(0.0, 0.0), (3.0, 4.0)]);
        for model in [WirelengthModel::Hpwl, WirelengthModel::Star, WirelengthModel::Mst] {
            assert!((net_wirelength(&nl, &p, n, model) - 7.0).abs() < 1e-12, "{model:?}");
        }
    }

    #[test]
    fn model_ordering_hpwl_le_mst_le_star_plus() {
        // Classic inequality: HPWL ≤ MST for any net; star ≥ MST for
        // spread pins (centroid detour).
        let (nl, p, n) = net_of(&[(0.0, 0.0), (10.0, 0.0), (5.0, 8.0), (2.0, 3.0)]);
        let hpwl = net_wirelength(&nl, &p, n, WirelengthModel::Hpwl);
        let mst = net_wirelength(&nl, &p, n, WirelengthModel::Mst);
        let star = net_wirelength(&nl, &p, n, WirelengthModel::Star);
        assert!(hpwl <= mst + 1e-9, "hpwl {hpwl} mst {mst}");
        assert!(mst <= star + 1e-9, "mst {mst} star {star}");
    }

    #[test]
    fn mst_on_collinear_points() {
        let (nl, p, n) = net_of(&[(0.0, 0.0), (5.0, 0.0), (9.0, 0.0)]);
        assert!((net_wirelength(&nl, &p, n, WirelengthModel::Mst) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_nets_are_zero() {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 1.0);
        let n1 = b.add_anonymous_net([c]);
        let nl = b.finish();
        let p = Placement::from_coords(vec![1.0], vec![1.0]);
        assert_eq!(net_wirelength(&nl, &p, n1, WirelengthModel::Mst), 0.0);
    }

    #[test]
    fn totals_and_ranking() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..4).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        let short = b.add_anonymous_net([cells[0], cells[1]]);
        let long = b.add_anonymous_net([cells[2], cells[3]]);
        let nl = b.finish();
        let p = Placement::from_coords(vec![0.0, 1.0, 0.0, 50.0], vec![0.0; 4]);
        let total = total_wirelength(&nl, &p, WirelengthModel::Hpwl);
        assert!((total - 51.0).abs() < 1e-12);
        let top = longest_nets(&nl, &p, WirelengthModel::Hpwl, 1);
        assert_eq!(top, vec![(long, 50.0)]);
        let _ = short;
    }
}
