//! Probabilistic routing-congestion estimation.
//!
//! Reproduces the paper's congestion picture (Figures 1 and 7) and its
//! §5.1.3 statistics. The die is divided into routing tiles with horizontal
//! and vertical track capacities; each net deposits probabilistic routing
//! demand over its bounding box using either
//!
//! * **RUDY** (Rectangular Uniform wire DensitY, Spindler–Johannes): wire
//!   demand `(w + h)` smeared uniformly over the `w × h` bounding box — a
//!   robust, router-independent estimate; or
//! * **L-shape**: for every pin pair of the net's spanning star, the two
//!   one-bend routes each taken with probability ½, concentrating demand
//!   on the box edges like a real router does.
//!
//! The statistics match the paper's: the number of nets passing through
//! ≥ 100% and ≥ 90% utilized tiles, and the *average congestion metric*
//! ("taking the worst 20% congested nets and averaging the congestion
//! number of all routing tiles these nets pass through").
//!
//! # Stripe-batched estimation
//!
//! [`estimate`] does not deposit each net into a shared global grid.
//! Instead the tile rows are split into horizontal *stripes*
//! ([`gtl_core::shard::stripes`]), nets are binned to the stripes their
//! bounding box crosses, and one [`gtl_core::exec::parallel_map`] pass
//! computes every stripe's demand slab — each stripe owning its own
//! accumulator, which doubles as the returned slab. Within a stripe, nets
//! deposit in ascending id order, so every tile receives exactly the
//! additions of the serial per-net pass in the same order: the map is
//! bit-identical to [`estimate_reference`] for any worker count.

use std::ops::Range;

use gtl_core::exec::{parallel_map_chunked, parallel_map_chunked_cancellable, Granularity};
use gtl_core::shard::stripes;
use gtl_netlist::{NetId, Netlist};

use crate::{Die, Placement};

/// Tile rows per stripe in the batched estimator — the workspace-shared
/// fixed height (never derived from the worker count), so the
/// decomposition and with it the result stay machine-independent.
const STRIPE_ROWS: usize = gtl_core::shard::DEFAULT_STRIPE_ROWS;

/// Which probabilistic router model deposits demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DemandModel {
    /// Uniform bounding-box smear (RUDY).
    #[default]
    Rudy,
    /// Half-probability one-bend routes on star topology.
    LShape,
}

/// Routing-grid parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoutingConfig {
    /// Tiles per die side (grid is `tiles × tiles`).
    pub tiles: usize,
    /// Horizontal track capacity per tile; `None` auto-calibrates so that
    /// the mean tile utilization is [`RoutingConfig::target_mean`].
    pub h_capacity: Option<f64>,
    /// Vertical track capacity per tile; `None` auto-calibrates.
    pub v_capacity: Option<f64>,
    /// Mean utilization targeted by auto-calibration.
    pub target_mean: f64,
    /// Demand model.
    pub model: DemandModel,
    /// Worker threads for the striped pass; `0` means all cores. The
    /// demand map is bit-identical for every value.
    pub threads: usize,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        Self {
            tiles: 32,
            h_capacity: None,
            v_capacity: None,
            target_mean: 0.55,
            model: DemandModel::Rudy,
            threads: 0,
        }
    }
}

/// A computed congestion map.
#[derive(Debug, Clone)]
pub struct CongestionMap {
    tiles: usize,
    h_demand: Vec<f64>,
    v_demand: Vec<f64>,
    h_capacity: f64,
    v_capacity: f64,
    /// Tile index range `(x0, y0, x1, y1)` of each net's bounding box.
    net_boxes: Vec<(u16, u16, u16, u16)>,
}

impl CongestionMap {
    /// Grid side length.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Horizontal track capacity per tile (explicit or auto-calibrated).
    pub fn h_capacity(&self) -> f64 {
        self.h_capacity
    }

    /// Vertical track capacity per tile (explicit or auto-calibrated).
    pub fn v_capacity(&self) -> f64 {
        self.v_capacity
    }

    /// Combined utilization of tile `(tx, ty)`: max of horizontal and
    /// vertical demand over capacity.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn utilization(&self, tx: usize, ty: usize) -> f64 {
        assert!(tx < self.tiles && ty < self.tiles, "tile out of range");
        let i = ty * self.tiles + tx;
        (self.h_demand[i] / self.h_capacity).max(self.v_demand[i] / self.v_capacity)
    }

    /// Largest tile utilization.
    pub fn max_utilization(&self) -> f64 {
        (0..self.tiles * self.tiles)
            .map(|i| (self.h_demand[i] / self.h_capacity).max(self.v_demand[i] / self.v_capacity))
            .fold(0.0, f64::max)
    }

    /// Mean tile utilization.
    pub fn mean_utilization(&self) -> f64 {
        let n = (self.tiles * self.tiles) as f64;
        (0..self.tiles * self.tiles)
            .map(|i| (self.h_demand[i] / self.h_capacity).max(self.v_demand[i] / self.v_capacity))
            .sum::<f64>()
            / n
    }

    /// Number of tiles with utilization at least `threshold`.
    pub fn tiles_at_least(&self, threshold: f64) -> usize {
        (0..self.tiles)
            .flat_map(|y| (0..self.tiles).map(move |x| (x, y)))
            .filter(|&(x, y)| self.utilization(x, y) >= threshold)
            .count()
    }

    /// Nets whose bounding box touches a tile with utilization ≥
    /// `threshold` (the paper's "nets passing through X% congested tiles").
    pub fn nets_through_tiles_at_least(&self, threshold: f64) -> usize {
        let hot: Vec<bool> = (0..self.tiles * self.tiles)
            .map(|i| {
                (self.h_demand[i] / self.h_capacity).max(self.v_demand[i] / self.v_capacity)
                    >= threshold
            })
            .collect();
        self.net_boxes
            .iter()
            .filter(|&&(x0, y0, x1, y1)| {
                (y0..=y1).any(|ty| (x0..=x1).any(|tx| hot[ty as usize * self.tiles + tx as usize]))
            })
            .count()
    }

    /// The paper's *average congestion metric*: take the worst 20% of nets
    /// (by peak bounding-box utilization) and average the utilization of
    /// all tiles those nets pass through. Returned as a percentage.
    pub fn average_congestion_metric(&self) -> f64 {
        if self.net_boxes.is_empty() {
            return 0.0;
        }
        let mut peaks: Vec<(f64, usize)> = self
            .net_boxes
            .iter()
            .enumerate()
            .map(|(i, &(x0, y0, x1, y1))| {
                let mut peak = 0.0f64;
                for ty in y0..=y1 {
                    for tx in x0..=x1 {
                        peak = peak.max(self.utilization(tx as usize, ty as usize));
                    }
                }
                (peak, i)
            })
            .collect();
        peaks.sort_by(|a, b| b.0.total_cmp(&a.0));
        let take = (peaks.len() / 5).max(1);
        let mut sum = 0.0;
        let mut count = 0usize;
        for &(_, i) in peaks.iter().take(take) {
            let (x0, y0, x1, y1) = self.net_boxes[i];
            for ty in y0..=y1 {
                for tx in x0..=x1 {
                    sum += self.utilization(tx as usize, ty as usize);
                    count += 1;
                }
            }
        }
        100.0 * sum / count.max(1) as f64
    }

    /// The paper's three §5.1.3 numbers as a bundle.
    pub fn report(&self) -> CongestionReport {
        CongestionReport {
            nets_through_100pct: self.nets_through_tiles_at_least(1.0),
            nets_through_90pct: self.nets_through_tiles_at_least(0.9),
            average_congestion_pct: self.average_congestion_metric(),
            max_utilization: self.max_utilization(),
            mean_utilization: self.mean_utilization(),
        }
    }

    /// Row-major utilization values, for heatmap rendering.
    pub fn to_grid(&self) -> Vec<f64> {
        (0..self.tiles * self.tiles)
            .map(|i| (self.h_demand[i] / self.h_capacity).max(self.v_demand[i] / self.v_capacity))
            .collect()
    }
}

/// Summary congestion statistics (the paper's §5.1.3 numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CongestionReport {
    /// Nets passing through ≥ 100% utilized tiles.
    pub nets_through_100pct: usize,
    /// Nets passing through ≥ 90% utilized tiles.
    pub nets_through_90pct: usize,
    /// Average congestion metric (percent), worst-20%-nets definition.
    pub average_congestion_pct: f64,
    /// Peak tile utilization.
    pub max_utilization: f64,
    /// Mean tile utilization.
    pub mean_utilization: f64,
}

impl std::fmt::Display for CongestionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nets≥100%: {}  nets≥90%: {}  avg-cong: {:.0}%  peak: {:.2}  mean: {:.2}",
            self.nets_through_100pct,
            self.nets_through_90pct,
            self.average_congestion_pct,
            self.max_utilization,
            self.mean_utilization
        )
    }
}

/// Per-net geometry computed once in the serial prepass: the float and
/// tile bounding boxes of every routable (≥ 2-pin) net.
#[derive(Debug, Clone, Copy)]
struct NetGeom {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    tx0: usize,
    ty0: usize,
    tx1: usize,
    ty1: usize,
}

/// Tile-index bounding boxes `(x0, y0, x1, y1)`, one per net.
type NetBoxes = Vec<(u16, u16, u16, u16)>;

/// Serial O(pins) prepass: net tile boxes (for every net, including
/// degenerate ones) and deposit geometry (for routable nets only).
fn net_geometry(
    netlist: &Netlist,
    placement: &Placement,
    t: usize,
    tw: f64,
    th: f64,
) -> (NetBoxes, Vec<Option<NetGeom>>) {
    let mut net_boxes = Vec::with_capacity(netlist.num_nets());
    let mut geoms = Vec::with_capacity(netlist.num_nets());
    let tile_of = |x: f64, y: f64| -> (usize, usize) {
        (((x / tw) as usize).min(t - 1), ((y / th) as usize).min(t - 1))
    };
    for net in netlist.nets() {
        let cells = netlist.net_cells(net);
        if cells.is_empty() {
            net_boxes.push((0, 0, 0, 0));
            geoms.push(None);
            continue;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &c in cells {
            let (x, y) = placement.position(c);
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        let (tx0, ty0) = tile_of(x0, y0);
        let (tx1, ty1) = tile_of(x1, y1);
        net_boxes.push((tx0 as u16, ty0 as u16, tx1 as u16, ty1 as u16));
        geoms.push((cells.len() >= 2).then_some(NetGeom { x0, y0, x1, y1, tx0, ty0, tx1, ty1 }));
    }
    (net_boxes, geoms)
}

/// Deposits `net`'s routing demand into one stripe's slab (`rows` tile
/// rows; slab row 0 is tile row `rows.start`). Called with the full row
/// range by the serial reference and with single stripes by the batched
/// pass — per tile, both produce the identical addition sequence.
#[allow(clippy::too_many_arguments)]
fn deposit_net(
    netlist: &Netlist,
    placement: &Placement,
    model: DemandModel,
    net: NetId,
    geom: &NetGeom,
    h_slab: &mut [f64],
    v_slab: &mut [f64],
    t: usize,
    tw: f64,
    th: f64,
    rows: &Range<usize>,
) {
    match model {
        DemandModel::Rudy => {
            // Wirelength (w + h) smeared over the box area: each tile
            // in the box receives demand ∝ its overlap share.
            let w = (geom.x1 - geom.x0).max(tw * 0.25);
            let h = (geom.y1 - geom.y0).max(th * 0.25);
            let tiles_covered = ((geom.tx1 - geom.tx0 + 1) * (geom.ty1 - geom.ty0 + 1)) as f64;
            let hd = w / tiles_covered;
            let vd = h / tiles_covered;
            for ty in geom.ty0.max(rows.start)..=geom.ty1.min(rows.end - 1) {
                let base = (ty - rows.start) * t;
                for tx in geom.tx0..=geom.tx1 {
                    h_slab[base + tx] += hd;
                    v_slab[base + tx] += vd;
                }
            }
        }
        DemandModel::LShape => {
            // Star topology: route every pin to the first pin with two
            // half-probability L routes. Raw star wire grows linearly
            // with fanout while a router builds a Steiner tree, so the
            // per-route deposits are scaled by `q(k) / (k - 1)` (RISA
            // fanout correction) — without it one 100-pin hub tile
            // dwarfs the whole map.
            let cells = netlist.net_cells(net);
            let weight = risa_weight(cells.len()) / (cells.len() - 1) as f64;
            let (sx, sy) = placement.position(cells[0]);
            for &c in &cells[1..] {
                let (px, py) = placement.position(c);
                deposit_l(h_slab, v_slab, t, tw, th, sx, sy, px, py, weight, rows);
            }
        }
    }
}

/// Auto-calibrates capacities against the mean demand (or passes explicit
/// ones through) and assembles the map.
fn finish_map(
    config: &RoutingConfig,
    t: usize,
    h_demand: Vec<f64>,
    v_demand: Vec<f64>,
    net_boxes: Vec<(u16, u16, u16, u16)>,
) -> CongestionMap {
    let mean_h = h_demand.iter().sum::<f64>() / (t * t) as f64;
    let mean_v = v_demand.iter().sum::<f64>() / (t * t) as f64;
    let h_capacity = config.h_capacity.unwrap_or_else(|| (mean_h / config.target_mean).max(1e-9));
    let v_capacity = config.v_capacity.unwrap_or_else(|| (mean_v / config.target_mean).max(1e-9));
    CongestionMap { tiles: t, h_demand, v_demand, h_capacity, v_capacity, net_boxes }
}

/// Estimates routing congestion for a placed netlist with the
/// stripe-batched pass (see the [module docs](self)).
///
/// # Panics
///
/// Panics if the placement does not cover the netlist or `tiles == 0`.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_place::congestion::{estimate, RoutingConfig};
/// use gtl_place::{Die, Placement};
///
/// let mut b = NetlistBuilder::new();
/// let a = b.add_cell("a", 1.0);
/// let c = b.add_cell("b", 1.0);
/// b.add_anonymous_net([a, c]);
/// let nl = b.finish();
/// let die = Die { width: 8.0, height: 8.0, rows: 8 };
/// let p = Placement::from_coords(vec![1.0, 7.0], vec![1.0, 7.0]);
/// let cfg = RoutingConfig { tiles: 4, ..RoutingConfig::default() };
/// let map = estimate(&nl, &p, &die, &cfg);
/// assert!(map.utilization(1, 1) > 0.0); // inside the net's bbox
/// ```
pub fn estimate(
    netlist: &Netlist,
    placement: &Placement,
    die: &Die,
    config: &RoutingConfig,
) -> CongestionMap {
    match estimate_impl(netlist, placement, die, config, None) {
        Ok(map) => map,
        Err(_) => unreachable!("an estimate without a token cannot be cancelled"),
    }
}

/// [`estimate`] polling `token` between tile stripes: a fired token makes
/// the pass return [`Cancelled`](gtl_core::cancel::Cancelled) (workers finish the stripe they are on).
/// A token that never fires yields a map identical to [`estimate`] (same
/// code path).
///
/// # Errors
///
/// [`Cancelled`](gtl_core::cancel::Cancelled) once the token fires.
///
/// # Panics
///
/// Panics if the placement does not cover the netlist or `tiles == 0`,
/// like [`estimate`].
pub fn estimate_cancellable(
    netlist: &Netlist,
    placement: &Placement,
    die: &Die,
    config: &RoutingConfig,
    token: &gtl_core::cancel::CancelToken,
) -> Result<CongestionMap, gtl_core::cancel::Cancelled> {
    estimate_impl(netlist, placement, die, config, Some(token))
}

/// The shared striped pass behind [`estimate`] and
/// [`estimate_cancellable`].
fn estimate_impl(
    netlist: &Netlist,
    placement: &Placement,
    die: &Die,
    config: &RoutingConfig,
    token: Option<&gtl_core::cancel::CancelToken>,
) -> Result<CongestionMap, gtl_core::cancel::Cancelled> {
    assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
    assert!(config.tiles > 0, "tiles must be positive");
    let t = config.tiles;
    let tw = die.width / t as f64;
    let th = die.height / t as f64;

    let (net_boxes, geoms) = net_geometry(netlist, placement, t, tw, th);

    // Bin routable nets to the stripes their tile box crosses (counting
    // order keeps each stripe's list ascending by net id).
    let row_stripes = stripes(t, STRIPE_ROWS);
    let mut stripe_nets: Vec<Vec<u32>> = vec![Vec::new(); row_stripes.len()];
    for (i, geom) in geoms.iter().enumerate() {
        if let Some(g) = geom {
            for list in &mut stripe_nets[g.ty0 / STRIPE_ROWS..=g.ty1 / STRIPE_ROWS] {
                list.push(i as u32);
            }
        }
    }

    // One batched pass: each stripe accumulates its own slab pair (the
    // slab doubles as the returned result, so it is allocated exactly
    // once — no shared grid, no per-net allocation, no copy-out).
    let stripe_pass = |s: usize| {
        let rows = &row_stripes[s];
        let len = rows.len() * t;
        let mut h_acc = vec![0.0f64; len];
        let mut v_acc = vec![0.0f64; len];
        for &net in &stripe_nets[s] {
            let geom = geoms[net as usize].as_ref().expect("binned nets are routable");
            deposit_net(
                netlist,
                placement,
                config.model,
                NetId::new(net as usize),
                geom,
                &mut h_acc,
                &mut v_acc,
                t,
                tw,
                th,
                rows,
            );
        }
        (h_acc, v_acc)
    };
    let slabs: Vec<(Vec<f64>, Vec<f64>)> = match token {
        None => {
            parallel_map_chunked(config.threads, row_stripes.len(), Granularity::Auto, stripe_pass)
        }
        Some(token) => parallel_map_chunked_cancellable(
            config.threads,
            row_stripes.len(),
            Granularity::Auto,
            token,
            stripe_pass,
        )?,
    };

    // Stitch stripe slabs into the full grid (each tile row belongs to
    // exactly one stripe).
    let mut h_demand = vec![0.0f64; t * t];
    let mut v_demand = vec![0.0f64; t * t];
    for (s, (h_slab, v_slab)) in slabs.iter().enumerate() {
        let rows = &row_stripes[s];
        h_demand[rows.start * t..rows.end * t].copy_from_slice(h_slab);
        v_demand[rows.start * t..rows.end * t].copy_from_slice(v_slab);
    }

    Ok(finish_map(config, t, h_demand, v_demand, net_boxes))
}

/// The serial per-net reference estimator: every net deposits into one
/// global grid, in net order — the pre-sharding implementation, kept as
/// the oracle that [`estimate`] must match bit-for-bit (see the property
/// tests in `crates/place/tests/properties.rs`).
///
/// # Panics
///
/// Panics if the placement does not cover the netlist or `tiles == 0`.
pub fn estimate_reference(
    netlist: &Netlist,
    placement: &Placement,
    die: &Die,
    config: &RoutingConfig,
) -> CongestionMap {
    assert!(placement.len() >= netlist.num_cells(), "placement smaller than netlist");
    assert!(config.tiles > 0, "tiles must be positive");
    let t = config.tiles;
    let tw = die.width / t as f64;
    let th = die.height / t as f64;

    let (net_boxes, geoms) = net_geometry(netlist, placement, t, tw, th);
    let mut h_demand = vec![0.0f64; t * t];
    let mut v_demand = vec![0.0f64; t * t];
    let all_rows = 0..t;
    for (i, geom) in geoms.iter().enumerate() {
        if let Some(g) = geom {
            deposit_net(
                netlist,
                placement,
                config.model,
                NetId::new(i),
                g,
                &mut h_demand,
                &mut v_demand,
                t,
                tw,
                th,
                &all_rows,
            );
        }
    }
    finish_map(config, t, h_demand, v_demand, net_boxes)
}

/// RISA net-weighting (Cheng, ICCAD'94): expected Steiner wirelength of a
/// `k`-pin net as a multiple of its bounding-box half-perimeter. Table for
/// the published pin counts, linear interpolation in between, `√k` growth
/// beyond the table.
fn risa_weight(k: usize) -> f64 {
    const TABLE: [(usize, f64); 12] = [
        (2, 1.0),
        (3, 1.0),
        (4, 1.0828),
        (5, 1.1536),
        (6, 1.2206),
        (7, 1.2823),
        (8, 1.3385),
        (9, 1.3991),
        (10, 1.4493),
        (15, 1.6899),
        (20, 1.8924),
        (50, 2.7933),
    ];
    if k <= 2 {
        return 1.0;
    }
    for pair in TABLE.windows(2) {
        let ((k0, q0), (k1, q1)) = (pair[0], pair[1]);
        if k <= k1 {
            let frac = (k - k0) as f64 / (k1 - k0) as f64;
            return q0 + frac * (q1 - q0);
        }
    }
    2.7933 * (k as f64 / 50.0).sqrt()
}

/// Deposits the two one-bend routes between `(ax, ay)` and `(bx, by)`,
/// each with probability ½ and scaled by `weight`: horizontal span on both
/// end rows, vertical span on both end columns, each tile receiving the
/// actual segment length crossing it. Only the tile rows in `rows` are
/// written (slab row 0 = tile row `rows.start`), so the same routine
/// serves the serial reference (full range) and the striped pass.
#[allow(clippy::too_many_arguments)]
fn deposit_l(
    h_slab: &mut [f64],
    v_slab: &mut [f64],
    t: usize,
    tw: f64,
    th: f64,
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
    weight: f64,
    rows: &Range<usize>,
) {
    let (x0, x1) = (ax.min(bx), ax.max(bx));
    let (y0, y1) = (ay.min(by), ay.max(by));
    let (tx0, tx1) = (((x0 / tw) as usize).min(t - 1), ((x1 / tw) as usize).min(t - 1));
    let (ty0, ty1) = (((y0 / th) as usize).min(t - 1), ((y1 / th) as usize).min(t - 1));
    let ta = ((ay / th) as usize).min(t - 1);
    let tb = ((by / th) as usize).min(t - 1);
    // Horizontal segments on row of a (route 1) and row of b (route 2).
    // Each tile receives the actual length of the segment crossing it (in
    // the same wirelength units RUDY deposits), not a full tile width —
    // otherwise sub-tile nets in tangled clusters are overweighted by
    // `tw / |dx|` and one cluster tile dwarfs the rest of the map.
    let (in_a, in_b) = (rows.contains(&ta), rows.contains(&tb));
    if in_a || in_b {
        for tx in tx0..=tx1 {
            let lo = tx as f64 * tw;
            let overlap = (x1.min(lo + tw) - x0.max(lo)).max(0.0);
            if in_a {
                h_slab[(ta - rows.start) * t + tx] += 0.5 * weight * overlap;
            }
            if in_b {
                h_slab[(tb - rows.start) * t + tx] += 0.5 * weight * overlap;
            }
        }
    }
    let ca = ((ax / tw) as usize).min(t - 1);
    let cb = ((bx / tw) as usize).min(t - 1);
    // Vertical segments on column of b (route 1) and column of a (route 2).
    for ty in ty0.max(rows.start)..=ty1.min(rows.end - 1) {
        let lo = ty as f64 * th;
        let overlap = (y1.min(lo + th) - y0.max(lo)).max(0.0);
        v_slab[(ty - rows.start) * t + cb] += 0.5 * weight * overlap;
        v_slab[(ty - rows.start) * t + ca] += 0.5 * weight * overlap;
    }
}

/// Convenience: a net with `NetId` passes through `(tx, ty)`'s tile iff
/// that tile is in its bounding box.
pub fn net_touches_tile(map: &CongestionMap, net: NetId, tx: usize, ty: usize) -> bool {
    let (x0, y0, x1, y1) = map.net_boxes[net.index()];
    (x0 as usize..=x1 as usize).contains(&tx) && (y0 as usize..=y1 as usize).contains(&ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn die() -> Die {
        Die { width: 32.0, height: 32.0, rows: 32 }
    }

    /// An `((ax, ay), (bx, by))` endpoint pair.
    type PinPair = ((f64, f64), (f64, f64));

    /// Cells at fixed positions with one net each pair.
    fn pair_netlist(pairs: &[PinPair]) -> (Netlist, Placement) {
        let mut b = NetlistBuilder::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, &((ax, ay), (bx, by))) in pairs.iter().enumerate() {
            let ca = b.add_cell(format!("a{i}"), 1.0);
            let cb = b.add_cell(format!("b{i}"), 1.0);
            b.add_anonymous_net([ca, cb]);
            xs.extend([ax, bx]);
            ys.extend([ay, by]);
        }
        (b.finish(), Placement::from_coords(xs, ys))
    }

    #[test]
    fn rudy_concentrates_demand_in_bbox() {
        let (nl, p) = pair_netlist(&[((2.0, 2.0), (10.0, 10.0))]);
        let cfg = RoutingConfig {
            tiles: 8,
            h_capacity: Some(1.0),
            v_capacity: Some(1.0),
            ..RoutingConfig::default()
        };
        let map = estimate(&nl, &p, &die(), &cfg);
        // Tiles inside the bbox have demand; tiles far away none.
        assert!(map.utilization(0, 0) > 0.0);
        assert!(map.utilization(7, 7) == 0.0);
    }

    #[test]
    fn lshape_puts_demand_on_edges() {
        let (nl, p) = pair_netlist(&[((2.0, 2.0), (30.0, 30.0))]);
        let cfg = RoutingConfig {
            tiles: 8,
            h_capacity: Some(1.0),
            v_capacity: Some(1.0),
            model: DemandModel::LShape,
            ..RoutingConfig::default()
        };
        let map = estimate(&nl, &p, &die(), &cfg);
        // Corner rows/columns get demand; the box interior gets none.
        assert!(map.utilization(3, 0) > 0.0, "bottom edge");
        assert!(map.utilization(0, 3) > 0.0, "left edge");
        assert_eq!(map.utilization(3, 3), 0.0, "interior");
    }

    #[test]
    fn hotspot_statistics() {
        // Many nets crossing one tile create a hotspot there.
        let mut pairs = Vec::new();
        for _ in 0..50 {
            pairs.push(((15.0, 15.0), (17.0, 17.0)));
        }
        // One faraway quiet net.
        pairs.push(((0.5, 0.5), (1.5, 1.5)));
        let (nl, p) = pair_netlist(&pairs);
        let cfg = RoutingConfig {
            tiles: 16,
            h_capacity: Some(2.0),
            v_capacity: Some(2.0),
            ..RoutingConfig::default()
        };
        let map = estimate(&nl, &p, &die(), &cfg);
        assert!(map.max_utilization() >= 1.0);
        assert!(map.tiles_at_least(1.0) >= 1);
        let through = map.nets_through_tiles_at_least(1.0);
        assert_eq!(through, 50, "the 50 clustered nets, not the quiet one");
        let report = map.report();
        assert_eq!(report.nets_through_100pct, 50);
        assert!(report.nets_through_90pct >= report.nets_through_100pct);
        assert!(report.average_congestion_pct > 0.0);
        let text = report.to_string();
        assert!(text.contains("nets≥100%"));
    }

    #[test]
    fn auto_calibration_hits_target_mean() {
        let mut pairs = Vec::new();
        for i in 0..40 {
            let x = (i % 8) as f64 * 4.0;
            let y = (i / 8) as f64 * 6.0;
            pairs.push(((x, y), (x + 3.0, y + 3.0)));
        }
        let (nl, p) = pair_netlist(&pairs);
        let cfg = RoutingConfig { tiles: 8, target_mean: 0.5, ..RoutingConfig::default() };
        let map = estimate(&nl, &p, &die(), &cfg);
        // Mean of max(h, v) ≥ target on either axis alone; sanity band.
        let mean = map.mean_utilization();
        assert!((0.3..1.2).contains(&mean), "mean {mean}");
    }

    #[test]
    fn empty_and_single_pin_nets_handled() {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 1.0);
        b.add_anonymous_net([c]);
        let empty: [gtl_netlist::CellId; 0] = [];
        b.add_anonymous_net(empty);
        let nl = b.finish();
        let p = Placement::from_coords(vec![1.0], vec![1.0]);
        let map = estimate(&nl, &p, &die(), &RoutingConfig::default());
        assert_eq!(map.max_utilization(), 0.0);
        assert_eq!(map.report().nets_through_100pct, 0);
    }

    #[test]
    fn grid_export_matches_utilization() {
        let (nl, p) = pair_netlist(&[((2.0, 2.0), (10.0, 10.0))]);
        let cfg = RoutingConfig {
            tiles: 4,
            h_capacity: Some(1.0),
            v_capacity: Some(1.0),
            ..RoutingConfig::default()
        };
        let map = estimate(&nl, &p, &die(), &cfg);
        let grid = map.to_grid();
        assert_eq!(grid.len(), 16);
        assert_eq!(grid[0], map.utilization(0, 0));
    }

    #[test]
    fn net_touches_tile_uses_bbox() {
        let (nl, p) = pair_netlist(&[((2.0, 2.0), (10.0, 10.0))]);
        let map = estimate(&nl, &p, &die(), &RoutingConfig { tiles: 8, ..Default::default() });
        assert!(net_touches_tile(&map, gtl_netlist::NetId::new(0), 1, 1));
        assert!(!net_touches_tile(&map, gtl_netlist::NetId::new(0), 7, 7));
        let _ = nl;
    }
}

#[cfg(test)]
mod cancel_tests {
    use super::*;
    use gtl_core::cancel::{CancelReason, CancelToken};
    use gtl_netlist::NetlistBuilder;

    fn fixture() -> (Netlist, Placement, Die, RoutingConfig) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..16).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..15 {
            b.add_anonymous_net([cells[i], cells[i + 1]]);
        }
        let nl = b.finish();
        let die = Die { width: 16.0, height: 16.0, rows: 16 };
        let coords: Vec<f64> = (0..16).map(|i| i as f64 + 0.5).collect();
        let p = Placement::from_coords(coords.clone(), coords);
        let cfg = RoutingConfig { tiles: 8, ..RoutingConfig::default() };
        (nl, p, die, cfg)
    }

    #[test]
    fn cancellable_estimate_with_live_token_is_identical() {
        let (nl, p, die, cfg) = fixture();
        let plain = estimate(&nl, &p, &die, &cfg);
        let token = CancelToken::new();
        let cancellable = estimate_cancellable(&nl, &p, &die, &cfg, &token).unwrap();
        assert_eq!(format!("{:?}", plain.report()), format!("{:?}", cancellable.report()));
    }

    #[test]
    fn cancelled_estimate_returns_structured_error() {
        let (nl, p, die, cfg) = fixture();
        let token = CancelToken::new();
        token.cancel();
        let err = estimate_cancellable(&nl, &p, &die, &cfg, &token).unwrap_err();
        assert_eq!(err.reason, CancelReason::Cancelled);
    }
}
