//! Property-based tests for the physical-design invariants.

use gtl_netlist::{CellId, Netlist, NetlistBuilder};
use gtl_place::legal::legalize;
use gtl_place::spread::{spread, SpreadConfig};
use gtl_place::wirelength::{net_wirelength, WirelengthModel};
use gtl_place::{Die, Placement};
use proptest::prelude::*;

fn arb_design(max_cells: usize) -> impl Strategy<Value = (Netlist, Placement, Die)> {
    (4..max_cells).prop_flat_map(|n| {
        let coords = proptest::collection::vec((0.0f64..30.0, 0.0f64..30.0), n);
        let nets =
            proptest::collection::vec(proptest::collection::vec(0..n, 2..4usize), 1..(2 * n));
        (coords, nets).prop_map(move |(coords, nets)| {
            let mut b = NetlistBuilder::new();
            b.add_anonymous_cells(n);
            for pins in nets {
                b.add_anonymous_net(pins.into_iter().map(CellId::new));
            }
            let nl = b.finish();
            let xs = coords.iter().map(|c| c.0).collect();
            let ys = coords.iter().map(|c| c.1).collect();
            let die = Die { width: 30.0, height: 30.0, rows: 30 };
            (nl, Placement::from_coords(xs, ys), die)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spreading keeps every cell inside the die and never loses a cell.
    #[test]
    fn spread_stays_in_die((nl, p, die) in arb_design(60)) {
        let s = spread(&nl, &p, &die, &SpreadConfig::default());
        prop_assert_eq!(s.len(), nl.num_cells());
        for c in nl.cells() {
            let (x, y) = s.position(c);
            prop_assert!(x >= -1e-9 && x <= die.width + 1e-9);
            prop_assert!(y >= -1e-9 && y <= die.height + 1e-9);
        }
    }

    /// Legalization produces row-aligned, pairwise non-overlapping cells
    /// (when nothing overflowed).
    #[test]
    fn legalize_is_overlap_free((nl, p, die) in arb_design(60)) {
        let legal = legalize(&nl, &p, &die);
        prop_assume!(legal.overflowed == 0);
        let row_h = die.row_height();
        let mut per_row: Vec<Vec<(f64, f64)>> = vec![Vec::new(); die.rows];
        for c in nl.cells() {
            let (x, y) = legal.placement.position(c);
            let row = legal.row_of[c.index()] as usize;
            prop_assert!((y - row as f64 * row_h).abs() < 1e-9);
            per_row[row].push((x, x + nl.cell_area(c) / row_h));
        }
        for intervals in &mut per_row {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0 + 1e-9, "overlap {:?}", w);
            }
        }
    }

    /// HPWL ≤ MST ≤ star ≤ clique-ish bound, for every net.
    #[test]
    fn wirelength_model_inequalities((nl, p, _) in arb_design(40)) {
        for net in nl.nets() {
            let hp = net_wirelength(&nl, &p, net, WirelengthModel::Hpwl);
            let mst = net_wirelength(&nl, &p, net, WirelengthModel::Mst);
            let star = net_wirelength(&nl, &p, net, WirelengthModel::Star);
            prop_assert!(hp <= mst + 1e-9, "hpwl {} > mst {}", hp, mst);
            // Star can beat MST only on 2-pin nets (where both equal HPWL).
            if nl.net_degree(net) > 2 {
                prop_assert!(mst <= 2.0 * star + 1e-9);
            }
        }
    }

    /// The stripe-batched congestion estimator agrees with the serial
    /// per-net reference within 1e-9 on random netlists, for both the
    /// RUDY and L-shape (RISA-corrected) models and any worker count.
    /// (By construction the two are bit-identical — every tile sees the
    /// same additions in the same order — so 1e-9 is generous.)
    #[test]
    fn striped_congestion_matches_reference(
        (nl, p, die) in arb_design(60),
        model_sel in 0usize..2,
        threads in 1usize..5,
    ) {
        use gtl_place::congestion::{estimate, estimate_reference, DemandModel, RoutingConfig};
        let cfg = RoutingConfig {
            // 13 is deliberately not a multiple of the stripe height, so
            // the ragged last stripe is exercised.
            tiles: 13,
            h_capacity: Some(1.0),
            v_capacity: Some(1.0),
            model: if model_sel == 0 { DemandModel::Rudy } else { DemandModel::LShape },
            threads,
            ..RoutingConfig::default()
        };
        let striped = estimate(&nl, &p, &die, &cfg);
        let reference = estimate_reference(&nl, &p, &die, &cfg);
        let (a, b) = (striped.to_grid(), reference.to_grid());
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!((x - y).abs() <= 1e-9, "tile {}: {} vs {}", i, x, y);
        }
        let (ta, tb): (f64, f64) = (a.iter().sum(), b.iter().sum());
        prop_assert!((ta - tb).abs() <= 1e-9 * ta.abs().max(1.0), "totals {} vs {}", ta, tb);
        prop_assert_eq!(striped.report(), reference.report());
    }

    /// The striped density map equals a plain serial accumulation for any
    /// worker count.
    #[test]
    fn striped_density_matches_serial((nl, p, die) in arb_design(60), threads in 1usize..5) {
        use gtl_place::spread::DensityMap;
        let bins = 6usize;
        let map = DensityMap::compute_striped(&nl, &p, &die, bins, threads);
        // Independent serial oracle.
        let bw = die.width / bins as f64;
        let bh = die.height / bins as f64;
        let mut area = vec![0.0f64; bins * bins];
        for c in nl.cells() {
            let (x, y) = p.position(c);
            let bx = ((x / bw) as usize).min(bins - 1);
            let by = ((y / bh) as usize).min(bins - 1);
            area[by * bins + bx] += nl.cell_area(c);
        }
        for by in 0..bins {
            for bx in 0..bins {
                let expected = area[by * bins + bx] / (bw * bh);
                prop_assert!((map.utilization(bx, by) - expected).abs() <= 1e-12);
            }
        }
    }

    /// The congestion map's demand is translation-consistent: moving every
    /// cell by the same offset (within the die) preserves totals.
    #[test]
    fn congestion_translation_invariant(
        (nl, p, die) in arb_design(40),
        dx in 0.0f64..5.0,
        dy in 0.0f64..5.0,
    ) {
        use gtl_place::congestion::{estimate, RoutingConfig};
        let cfg = RoutingConfig {
            tiles: 6,
            h_capacity: Some(1.0),
            v_capacity: Some(1.0),
            ..RoutingConfig::default()
        };
        // Shrink the placement into [0, 25] so the offset stays inside.
        let xs: Vec<f64> = p.xs().iter().map(|x| x * 25.0 / 30.0).collect();
        let ys: Vec<f64> = p.ys().iter().map(|y| y * 25.0 / 30.0).collect();
        let base = Placement::from_coords(xs.clone(), ys.clone());
        let moved = Placement::from_coords(
            xs.iter().map(|x| x + dx).collect(),
            ys.iter().map(|y| y + dy).collect(),
        );
        let a = estimate(&nl, &base, &die, &cfg);
        let b = estimate(&nl, &moved, &die, &cfg);
        let sum = |g: Vec<f64>| g.iter().sum::<f64>();
        let (ta, tb) = (sum(a.to_grid()), sum(b.to_grid()));
        // Totals match within tile-quantization slack.
        prop_assert!((ta - tb).abs() <= 0.35 * ta.max(tb).max(1.0), "{} vs {}", ta, tb);
    }
}
