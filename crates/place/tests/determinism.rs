//! Execution-layer determinism, end-to-end through the sharded placer:
//! the full placement (every cell coordinate, byte for byte) must be
//! identical for 1, 2 and 8 workers, and sharding must not wreck quality.

use gtl_place::{hpwl, place, Die, Placement, PlacerConfig};
use gtl_synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};

fn testbed() -> gtl_synth::GeneratedCircuit {
    generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec1, 0.01))
}

fn sharded_config(threads: usize) -> PlacerConfig {
    PlacerConfig { shard_grid: 3, threads, ..PlacerConfig::default() }
}

/// Same seed + same shard grid ⇒ identical cell coordinates for any
/// worker count. `Placement: PartialEq` compares every coordinate
/// exactly, so this is the byte-identical contract of ROADMAP applied to
/// a full sharded placement run.
#[test]
fn sharded_placement_identical_for_1_2_8_workers() {
    let g = testbed();
    let die = Die::for_netlist(&g.netlist, 0.6);
    let baseline = place(&g.netlist, &die, &sharded_config(1));
    for threads in [2, 8] {
        let run = place(&g.netlist, &die, &sharded_config(threads));
        assert_eq!(baseline, run, "placement changed with {threads} workers");
    }
}

/// The sharded decomposition must genuinely run multi-shard on this
/// fixture (otherwise the test above degenerates to the global path):
/// the placed cells must spread over most of the 3×3 region grid, so the
/// per-iteration partitions were populated too.
#[test]
fn fixture_actually_shards() {
    let g = testbed();
    assert!(g.netlist.num_cells() > 2_000);
    let die = Die::for_netlist(&g.netlist, 0.6);
    let placed = place(&g.netlist, &die, &sharded_config(1));
    let grid = gtl_core::shard::ShardGrid::square(3, die.width, die.height);
    let occupied =
        grid.partition(placed.xs(), placed.ys()).iter().filter(|s| !s.is_empty()).count();
    assert!(occupied >= 7, "only {occupied}/9 shards occupied — fixture too degenerate");
}

/// Sharding is an approximation (block solves + boundary reconciliation),
/// but it must stay a *placement*: far better than random scatter and in
/// the same quality band as the global solve.
#[test]
fn sharded_quality_close_to_global() {
    let g = testbed();
    let die = Die::for_netlist(&g.netlist, 0.6);
    let sharded = place(&g.netlist, &die, &sharded_config(0));
    let global =
        place(&g.netlist, &die, &PlacerConfig { shard_grid: 1, ..PlacerConfig::default() });

    let n = g.netlist.num_cells();
    let random = Placement::from_coords(
        (0..n).map(|i| (i as f64 * 0.61803) % die.width).collect(),
        (0..n).map(|i| (i as f64 * std::f64::consts::FRAC_1_PI) % die.height).collect(),
    );
    let h_sharded = hpwl(&g.netlist, &sharded);
    let h_global = hpwl(&g.netlist, &global);
    let h_random = hpwl(&g.netlist, &random);
    assert!(h_sharded < 0.7 * h_random, "sharded {h_sharded} vs random {h_random}");
    assert!(h_sharded < 1.6 * h_global, "sharded {h_sharded} vs global {h_global}");
}
