//! GTL quality metrics (paper §3.1) and classical baselines (Chapter II).
//!
//! All metrics score a cell group `C` from three raw quantities computed by
//! [`SubsetStats`]: the cut `T(C)`, the size `|C|`, and the group pin count
//! (giving `A_C`). Rent's rule says `T(C) ≈ A_G·|C|^p` for an "average"
//! group, so the normalized scores hover around **1.0** for ordinary logic
//! and drop **well below 1** (e.g. < 0.1) for tangled structures.
//!
//! # Example
//!
//! ```
//! use gtl_tangled::metrics::{self, DesignContext};
//!
//! let ctx = DesignContext { avg_pins_per_cell: 4.0, rent_exponent: 0.6 };
//! // A 1000-cell group with only 40 cut nets and ordinary pin density:
//! let score = metrics::ngtl_score(40, 1000, &ctx);
//! assert!(score < 0.2, "strongly tangled: {score}");
//! ```

use gtl_netlist::SubsetStats;

/// Global design context the normalized metrics depend on.
///
/// * `avg_pins_per_cell` — the paper's `A(G)`, from
///   [`Netlist::avg_pins_per_cell`](gtl_netlist::Netlist::avg_pins_per_cell).
/// * `rent_exponent` — the exponent `p`; estimate per-ordering with
///   [`estimate_rent_exponent`] or supply a known design value
///   (typical standard-cell designs: 0.55–0.75).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignContext {
    /// Average pins per cell over the whole design, `A(G)`.
    pub avg_pins_per_cell: f64,
    /// Rent exponent `p` used to scale cut against group size.
    pub rent_exponent: f64,
}

impl DesignContext {
    /// Builds a context from a netlist and a Rent exponent.
    pub fn new(netlist: &gtl_netlist::Netlist, rent_exponent: f64) -> Self {
        Self { avg_pins_per_cell: netlist.avg_pins_per_cell(), rent_exponent }
    }
}

/// Which score the finder optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MetricKind {
    /// Normalized GTL-Score `T(C) / (A_G · |C|^p)` (paper eq. for nGTL-S).
    NGtlScore,
    /// Density-aware score `T(C) / (A_G · |C|^(p·A_C/A_G))` — the paper's
    /// final metric, preferring groups of complex (high-pin) gates.
    #[default]
    GtlSd,
}

impl MetricKind {
    /// Evaluates this metric on a group's raw statistics.
    pub fn score(self, stats: &SubsetStats, ctx: &DesignContext) -> f64 {
        match self {
            Self::NGtlScore => ngtl_score(stats.cut, stats.size, ctx),
            Self::GtlSd => gtl_sd_score(stats.cut, stats.size, stats.avg_pins_per_cell(), ctx),
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NGtlScore => write!(f, "nGTL-S"),
            Self::GtlSd => write!(f, "GTL-SD"),
        }
    }
}

/// Raw GTL-Score `T(C) / |C|^p`.
///
/// Unnormalized; its expected value for an average group is `A(G)`.
/// Returns `f64::INFINITY` for empty groups.
pub fn gtl_score(cut: usize, size: usize, rent_exponent: f64) -> f64 {
    if size == 0 {
        return f64::INFINITY;
    }
    cut as f64 / (size as f64).powf(rent_exponent)
}

/// Normalized GTL-Score `T(C) / (A_G · |C|^p)` — the paper's `nGTL-S`.
///
/// Scaled so an average-quality group scores ≈ 1.0; strong GTLs score well
/// below 1 (the paper's rule of thumb: < 0.1).
///
/// Returns `f64::INFINITY` for empty groups.
///
/// # Panics
///
/// Panics if `ctx.avg_pins_per_cell` is not positive.
pub fn ngtl_score(cut: usize, size: usize, ctx: &DesignContext) -> f64 {
    assert!(ctx.avg_pins_per_cell > 0.0, "A(G) must be positive");
    gtl_score(cut, size, ctx.rent_exponent) / ctx.avg_pins_per_cell
}

/// Density-aware GTL-Score `T(C) / (A_G · |C|^(p·A_C/A_G))` — the paper's
/// `GTL-SD`.
///
/// `avg_pins_in_group` is `A_C`, the average pin count of cells inside the
/// group. When the group is made of complex gates (`A_C > A_G`) the
/// exponent grows, the denominator grows, and the score drops — biasing the
/// metric toward pin-dense, genuinely tangled logic.
///
/// Returns `f64::INFINITY` for empty groups.
///
/// # Panics
///
/// Panics if `ctx.avg_pins_per_cell` is not positive.
pub fn gtl_sd_score(cut: usize, size: usize, avg_pins_in_group: f64, ctx: &DesignContext) -> f64 {
    assert!(ctx.avg_pins_per_cell > 0.0, "A(G) must be positive");
    if size == 0 {
        return f64::INFINITY;
    }
    let exponent = ctx.rent_exponent * (avg_pins_in_group / ctx.avg_pins_per_cell);
    cut as f64 / (ctx.avg_pins_per_cell * (size as f64).powf(exponent))
}

/// Per-group Rent exponent estimate `(ln T(C) − ln A_C) / ln |C|`
/// (paper §3.2.2).
///
/// Returns `None` when the estimate is undefined: `|C| ≤ 1`, `T(C) = 0`,
/// or no pins.
pub fn estimate_rent_exponent(stats: &SubsetStats) -> Option<f64> {
    if stats.size <= 1 || stats.cut == 0 || stats.pins == 0 {
        return None;
    }
    let a_c = stats.avg_pins_per_cell();
    Some(((stats.cut as f64).ln() - a_c.ln()) / (stats.size as f64).ln())
}

/// Estimates the whole design's Rent exponent by sampling BFS regions.
///
/// Grows breadth-first regions from `samples` deterministic seed cells,
/// records `(|C|, T(C))` at power-of-two region sizes between 16 and
/// `max_region`, and fits `ln T = ln c + p·ln |C|` by least squares.
/// This is the classical empirical-Rent procedure and gives the global
/// `p` to use in [`DesignContext`] when per-ordering estimation is not
/// wanted.
///
/// Returns `None` when fewer than 4 sample points exist (tiny or
/// disconnected designs).
pub fn estimate_design_rent_exponent(
    netlist: &gtl_netlist::Netlist,
    samples: usize,
    max_region: usize,
) -> Option<f64> {
    use std::collections::VecDeque;
    let n = netlist.num_cells();
    if n < 32 {
        return None;
    }
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let stride = (n / samples.max(1)).max(1);
    let mut inside: Vec<u32> = vec![0; netlist.num_nets()];
    let mut dirty_nets: Vec<u32> = Vec::new();
    let mut visited = vec![false; n];
    let mut visited_cells: Vec<u32> = Vec::new();

    for seed_idx in (0..n).step_by(stride).take(samples) {
        let seed = gtl_netlist::CellId::new(seed_idx);
        let mut queue = VecDeque::new();
        queue.push_back(seed);
        visited[seed.index()] = true;
        visited_cells.push(seed.raw());
        let mut size = 0usize;
        let mut cut = 0i64;
        let mut next_mark = 16usize;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &net in netlist.cell_nets(u) {
                let deg = netlist.net_degree(net);
                let old = inside[net.index()] as usize;
                if old == 0 {
                    dirty_nets.push(net.raw());
                }
                inside[net.index()] += 1;
                let was_cut = old > 0 && old < deg;
                let is_cut = old + 1 < deg;
                cut += is_cut as i64 - was_cut as i64;
                for &v in netlist.net_cells(net) {
                    if !visited[v.index()] {
                        visited[v.index()] = true;
                        visited_cells.push(v.raw());
                        queue.push_back(v);
                    }
                }
            }
            if size == next_mark {
                if cut > 0 {
                    xs.push((size as f64).ln());
                    ys.push((cut as f64).ln());
                }
                next_mark *= 2;
                if next_mark > max_region.min(n / 2) {
                    break;
                }
            }
        }
        for raw in dirty_nets.drain(..) {
            inside[raw as usize] = 0;
        }
        for raw in visited_cells.drain(..) {
            visited[raw as usize] = false;
        }
    }

    if xs.len() < 4 {
        return None;
    }
    let k = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
    let sxx: f64 = xs.iter().map(|a| a * a).sum();
    let denom = k * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some(((k * sxy - sx * sy) / denom).clamp(0.05, 1.0))
}

/// Classical clustering metrics, for comparison (paper Chapter II, Fig. 5).
pub mod baseline {
    use gtl_netlist::SubsetStats;

    /// Ratio cut / scaled cost `T(C) / |C|` (Chan–Schlag–Zien).
    ///
    /// Monotonically favors large groups; shown in the paper's Figure 5 to
    /// be unable to identify GTLs. Returns `f64::INFINITY` for empty groups.
    pub fn ratio_cut(stats: &SubsetStats) -> f64 {
        if stats.size == 0 {
            return f64::INFINITY;
        }
        stats.cut as f64 / stats.size as f64
    }

    /// Absorption: the number of internal nets (Alpert–Kahng survey).
    ///
    /// Grows with cluster size, so it is biased toward big clusters.
    pub fn absorption(stats: &SubsetStats) -> f64 {
        stats.internal_nets as f64
    }

    /// Rent-exponent cost `ln T(C) / ln |C|` (Ng et al.).
    ///
    /// Better than ratio cut, but still monotonically decreasing with size.
    /// Returns `f64::INFINITY` when undefined (`|C| ≤ 1` or `T = 0`).
    pub fn rent_cost(stats: &SubsetStats) -> f64 {
        if stats.size <= 1 || stats.cut == 0 {
            return f64::INFINITY;
        }
        (stats.cut as f64).ln() / (stats.size as f64).ln()
    }

    /// Degree part of Hagen–Kahng degree/separation: average nets per cell
    /// inside the group.
    pub fn degree(stats: &SubsetStats) -> f64 {
        stats.avg_pins_per_cell()
    }

    /// Separation part of degree/separation: average shortest-path length
    /// between sampled node pairs inside the group, measured on the
    /// group-induced hypergraph (nets as unit-length hops).
    ///
    /// Exact all-pairs is quadratic, so up to `samples` BFS sources are
    /// used. Unreachable pairs are skipped; returns `f64::INFINITY` when no
    /// pair is reachable or the group has < 2 cells.
    pub fn separation(
        netlist: &gtl_netlist::Netlist,
        group: &gtl_netlist::CellSet,
        samples: usize,
    ) -> f64 {
        use std::collections::VecDeque;
        if group.len() < 2 {
            return f64::INFINITY;
        }
        let members: Vec<_> = group.iter().collect();
        let step = (members.len() / samples.max(1)).max(1);
        let mut total = 0u64;
        let mut pairs = 0u64;
        let mut dist = vec![u32::MAX; netlist.num_cells()];
        let mut touched = Vec::new();
        for src in members.iter().step_by(step) {
            let mut queue = VecDeque::new();
            dist[src.index()] = 0;
            touched.push(*src);
            queue.push_back(*src);
            while let Some(u) = queue.pop_front() {
                let d = dist[u.index()];
                for &net in netlist.cell_nets(u) {
                    for &v in netlist.net_cells(net) {
                        if group.contains(v) && dist[v.index()] == u32::MAX {
                            dist[v.index()] = d + 1;
                            touched.push(v);
                            queue.push_back(v);
                        }
                    }
                }
            }
            for m in &members {
                let d = dist[m.index()];
                if d != u32::MAX && d > 0 {
                    total += d as u64;
                    pairs += 1;
                }
            }
            for t in touched.drain(..) {
                dist[t.index()] = u32::MAX;
            }
        }
        if pairs == 0 {
            f64::INFINITY
        } else {
            total as f64 / pairs as f64
        }
    }

    /// Degree separation `DS = degree / separation` (Hagen–Kahng).
    ///
    /// Higher is more tangled. Returns `0.0` when separation is infinite.
    pub fn degree_separation(
        netlist: &gtl_netlist::Netlist,
        group: &gtl_netlist::CellSet,
        stats: &SubsetStats,
        samples: usize,
    ) -> f64 {
        let sep = separation(netlist, group, samples);
        if sep.is_finite() && sep > 0.0 {
            degree(stats) / sep
        } else {
            0.0
        }
    }

    /// Edge separability (Cong–Lim): the min-cut between the two endpoint
    /// cells of an edge, here computed as the number of edge-disjoint
    /// paths of length ≤ `max_len` (a bounded proxy; the exact min-cut is
    /// the `max_len → ∞` limit by Menger's theorem).
    ///
    /// The paper's objection — "the evaluation of edge separability is
    /// time consuming" — applies: each call runs a bounded max-flow.
    pub fn edge_separability(
        graph: &crate::kl_connectivity::AdjacencyGraph,
        a: gtl_netlist::CellId,
        b: gtl_netlist::CellId,
        max_len: usize,
    ) -> usize {
        crate::kl_connectivity::edge_disjoint_paths(graph, a, b, max_len, usize::MAX - 1)
    }

    /// Adhesion (Kudva–Sullivan–Dougherty): the sum of pairwise min-cuts
    /// over the cluster, sampled over at most `sample_pairs` pairs and
    /// scaled up (the exact all-pairs version is "hardly practical for
    /// designs with millions of cells", as the paper notes).
    pub fn adhesion(
        netlist: &gtl_netlist::Netlist,
        group: &gtl_netlist::CellSet,
        max_len: usize,
        sample_pairs: usize,
    ) -> f64 {
        let members: Vec<gtl_netlist::CellId> = group.iter().collect();
        let total_pairs = members.len().saturating_mul(members.len().saturating_sub(1)) / 2;
        if total_pairs == 0 {
            return 0.0;
        }
        let graph = crate::kl_connectivity::AdjacencyGraph::build(netlist, 16);
        let mut sum = 0usize;
        let mut sampled = 0usize;
        // Deterministic stride sampling over the pair triangle.
        let stride = (total_pairs / sample_pairs.max(1)).max(1);
        let mut index = 0usize;
        'outer: for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if index.is_multiple_of(stride) {
                    sum += edge_separability(&graph, members[i], members[j], max_len);
                    sampled += 1;
                    if sampled >= sample_pairs {
                        break 'outer;
                    }
                }
                index += 1;
            }
        }
        sum as f64 * total_pairs as f64 / sampled.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellSet, NetlistBuilder, SubsetStats};

    fn ctx() -> DesignContext {
        DesignContext { avg_pins_per_cell: 4.0, rent_exponent: 0.6 }
    }

    fn stats(cut: usize, size: usize, pins: usize) -> SubsetStats {
        SubsetStats { size, cut, pins, internal_nets: 0 }
    }

    #[test]
    fn gtl_score_matches_formula() {
        let s = gtl_score(100, 1000, 0.6);
        assert!((s - 100.0 / 1000f64.powf(0.6)).abs() < 1e-12);
    }

    #[test]
    fn ngtl_average_group_scores_one() {
        // By Rent's rule an average group has T = A_G * |C|^p.
        let c = ctx();
        let size = 500usize;
        let cut = (c.avg_pins_per_cell * (size as f64).powf(c.rent_exponent)).round() as usize;
        let s = ngtl_score(cut, size, &c);
        assert!((s - 1.0).abs() < 0.01, "score {s}");
    }

    #[test]
    fn ngtl_tangled_group_scores_low() {
        let s = ngtl_score(36, 32000, &ctx());
        assert!(s < 0.05, "score {s}");
    }

    #[test]
    fn gtl_sd_penalizes_sparse_pin_groups() {
        // A_C below A_G shrinks the exponent, so the same cut scores HIGHER
        // (less tangled); A_C above A_G scores lower (more tangled).
        let c = ctx();
        let base = ngtl_score(50, 1000, &c);
        let dense = gtl_sd_score(50, 1000, 5.0, &c); // A_C = 5 > A_G = 4
        let sparse = gtl_sd_score(50, 1000, 3.0, &c); // A_C = 3 < A_G
        assert!(dense < base && base < sparse, "{dense} < {base} < {sparse}");
    }

    #[test]
    fn gtl_sd_equals_ngtl_when_density_typical() {
        let c = ctx();
        let a = ngtl_score(50, 1000, &c);
        let b = gtl_sd_score(50, 1000, c.avg_pins_per_cell, &c);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn empty_group_scores_infinite() {
        assert!(gtl_score(0, 0, 0.6).is_infinite());
        assert!(ngtl_score(0, 0, &ctx()).is_infinite());
        assert!(gtl_sd_score(0, 0, 0.0, &ctx()).is_infinite());
    }

    #[test]
    fn rent_estimate_inverts_rent_rule() {
        // Construct stats satisfying T = A_C * |C|^p exactly and recover p.
        let p = 0.63;
        let size = 2000usize;
        let a_c = 4.2;
        let cut = (a_c * (size as f64).powf(p)).round() as usize;
        let s = stats(cut, size, (a_c * size as f64) as usize);
        let est = estimate_rent_exponent(&s).unwrap();
        assert!((est - p).abs() < 0.01, "estimated {est}");
    }

    #[test]
    fn rent_estimate_undefined_cases() {
        assert!(estimate_rent_exponent(&stats(0, 10, 40)).is_none());
        assert!(estimate_rent_exponent(&stats(5, 1, 4)).is_none());
        assert!(estimate_rent_exponent(&stats(5, 10, 0)).is_none());
    }

    #[test]
    fn metric_kind_dispatch() {
        let c = ctx();
        let s = stats(50, 1000, 4000);
        assert!((MetricKind::NGtlScore.score(&s, &c) - ngtl_score(50, 1000, &c)).abs() < 1e-12);
        assert!((MetricKind::GtlSd.score(&s, &c) - gtl_sd_score(50, 1000, 4.0, &c)).abs() < 1e-12);
        assert_eq!(MetricKind::NGtlScore.to_string(), "nGTL-S");
        assert_eq!(MetricKind::GtlSd.to_string(), "GTL-SD");
    }

    #[test]
    fn ratio_cut_favors_large_groups() {
        // Same "quality" at different sizes: ratio cut strictly prefers the
        // larger one (the flaw Figure 5 demonstrates).
        let small = baseline::ratio_cut(&stats(40, 100, 400));
        let large = baseline::ratio_cut(&stats(160, 1000, 4000));
        assert!(large < small);
    }

    #[test]
    fn ngtl_is_size_fair() {
        // The same two groups under nGTL-S: both near-average, no size bias.
        let c = ctx();
        let small = ngtl_score((4.0 * 100f64.powf(0.6)) as usize, 100, &c);
        let large = ngtl_score((4.0 * 1000f64.powf(0.6)) as usize, 1000, &c);
        assert!((small - large).abs() < 0.05, "{small} vs {large}");
    }

    #[test]
    fn baseline_rent_cost_decreases_with_size() {
        let a = baseline::rent_cost(&stats(40, 100, 400));
        let b = baseline::rent_cost(&stats(40, 10000, 40000));
        assert!(b < a);
        assert!(baseline::rent_cost(&stats(0, 100, 1)).is_infinite());
    }

    #[test]
    fn separation_on_path_graph() {
        // Path a-b-c: avg pairwise distance from all sources = (1+2+1+1+2+1)/6.
        let mut bld = NetlistBuilder::new();
        let a = bld.add_cell("a", 1.0);
        let b = bld.add_cell("b", 1.0);
        let cc = bld.add_cell("c", 1.0);
        bld.add_anonymous_net([a, b]);
        bld.add_anonymous_net([b, cc]);
        let nl = bld.finish();
        let group = CellSet::from_cells(3, [a, b, cc]);
        let sep = baseline::separation(&nl, &group, usize::MAX);
        assert!((sep - 8.0 / 6.0).abs() < 1e-9, "sep {sep}");
        let st = SubsetStats::compute(&nl, &group);
        let ds = baseline::degree_separation(&nl, &group, &st, usize::MAX);
        assert!(ds > 0.0);
    }

    #[test]
    fn separation_degenerate() {
        let mut bld = NetlistBuilder::new();
        let a = bld.add_cell("a", 1.0);
        let nl = bld.finish();
        let group = CellSet::from_cells(1, [a]);
        assert!(baseline::separation(&nl, &group, 4).is_infinite());
    }

    #[test]
    fn absorption_counts_internal_nets() {
        let s = SubsetStats { size: 5, cut: 2, pins: 20, internal_nets: 7 };
        assert_eq!(baseline::absorption(&s), 7.0);
    }

    #[test]
    fn design_rent_estimate_on_hierarchical_background() {
        // A Rent-wired background should regress to a sane exponent band.
        let (nl, _) = crate::testutil::cliques_in_background(3_000, &[], 17);
        let p = estimate_design_rent_exponent(&nl, 12, 1024).expect("estimate");
        assert!((0.2..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn design_rent_estimate_small_design_is_none() {
        let mut bld = NetlistBuilder::new();
        let a = bld.add_cell("a", 1.0);
        let b2 = bld.add_cell("b", 1.0);
        bld.add_anonymous_net([a, b2]);
        let nl = bld.finish();
        assert!(estimate_design_rent_exponent(&nl, 4, 64).is_none());
    }

    #[test]
    fn edge_separability_on_clique() {
        // In a 4-clique the min-cut between any two vertices is 3.
        let mut bld = NetlistBuilder::new();
        let cells: Vec<_> = (0..4).map(|i| bld.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                bld.add_anonymous_net([cells[i], cells[j]]);
            }
        }
        let nl = bld.finish();
        let graph = crate::kl_connectivity::AdjacencyGraph::build(&nl, 16);
        assert_eq!(baseline::edge_separability(&graph, cells[0], cells[1], 3), 3);
    }

    #[test]
    fn adhesion_clique_beats_chain() {
        let build = |clique: bool| {
            let mut bld = NetlistBuilder::new();
            let cells: Vec<_> = (0..6).map(|i| bld.add_cell(format!("c{i}"), 1.0)).collect();
            if clique {
                for i in 0..6 {
                    for j in (i + 1)..6 {
                        bld.add_anonymous_net([cells[i], cells[j]]);
                    }
                }
            } else {
                for w in cells.windows(2) {
                    bld.add_anonymous_net([w[0], w[1]]);
                }
            }
            let nl = bld.finish();
            let group = CellSet::from_cells(nl.num_cells(), cells.iter().copied());
            baseline::adhesion(&nl, &group, 4, 100)
        };
        let clique = build(true);
        let chain = build(false);
        assert!(clique > 3.0 * chain, "clique {clique} vs chain {chain}");
    }

    #[test]
    fn adhesion_empty_group() {
        let mut bld = NetlistBuilder::new();
        bld.add_cell("a", 1.0);
        let nl = bld.finish();
        let group = CellSet::new(1);
        assert_eq!(baseline::adhesion(&nl, &group, 4, 10), 0.0);
    }
}
