//! (K,L)-connectivity — the Garbers–Prömel–Steger cluster notion the
//! paper's Chapter II reviews (related work #6).
//!
//! Two cells are **(K,L)-connected** when K edge-disjoint paths of length
//! at most L connect them; a cluster is (K,L)-connected when every member
//! pair is. The paper rejects this as a GTL criterion for two reasons
//! this module lets you verify directly: such clusters can still have a
//! large cut, and the property is expensive to evaluate (each pair costs
//! a bounded max-flow).
//!
//! The implementation converts the hypergraph to its cell-adjacency graph
//! (each net contributing edges between its pins) and runs a depth-bounded
//! Ford–Fulkerson: repeatedly find an augmenting simple path of length
//! ≤ L by depth-limited search over non-saturated edges.

use gtl_netlist::{CellId, CellSet, Netlist};

/// Adjacency view used by the connectivity checks (deduplicated edges,
/// each net of degree ≤ `max_net_degree` contributing pin-pair edges).
#[derive(Debug, Clone)]
pub struct AdjacencyGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl AdjacencyGraph {
    /// Builds the adjacency graph of `netlist`, skipping nets with more
    /// than `max_net_degree` pins (fanout nets make everything trivially
    /// "connected" and are skipped by the original heuristic too).
    pub fn build(netlist: &Netlist, max_net_degree: usize) -> Self {
        let n = netlist.num_cells();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for net in netlist.nets() {
            let cells = netlist.net_cells(net);
            if cells.len() < 2 || cells.len() > max_net_degree {
                continue;
            }
            for i in 0..cells.len() {
                for j in (i + 1)..cells.len() {
                    let (a, b) = (cells[i].raw(), cells[j].raw());
                    edges.push((a.min(b), a.max(b)));
                }
            }
        }
        // Sort + dedup instead of hashing: the greedy path packing below
        // is order-sensitive, and walking edges in lexicographic order
        // yields each vertex's adjacency list already sorted — no hash
        // iteration order anywhere near the result.
        edges.sort_unstable();
        edges.dedup();
        let mut counts = vec![0usize; n];
        for &(a, b) in &edges {
            counts[a as usize] += 1;
            counts[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let mut targets = vec![0u32; *offsets.last().unwrap()];
        let mut cursor = offsets[..n].to_vec();
        for &(a, b) in &edges {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        Self { offsets, targets }
    }

    /// Neighbors of `cell`.
    pub fn neighbors(&self, cell: CellId) -> &[u32] {
        &self.targets[self.offsets[cell.index()]..self.offsets[cell.index() + 1]]
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Counts edge-disjoint paths of length ≤ `max_len` between `a` and `b`,
/// stopping once `target_paths` are found.
///
/// This is a deterministic greedy packing (depth-limited search, then
/// saturate the found path's edges) — a *lower bound* on the true number
/// of length-bounded edge-disjoint paths. Finding the exact number is
/// NP-hard for general length bounds, which is part of why the paper
/// calls (K,L)-connectivity "very difficult to estimate"; Garbers et al.
/// likewise used a heuristic.
///
/// # Panics
///
/// Panics if `a` or `b` are out of bounds for the graph.
pub fn edge_disjoint_paths(
    graph: &AdjacencyGraph,
    a: CellId,
    b: CellId,
    max_len: usize,
    target_paths: usize,
) -> usize {
    assert!(a.index() < graph.num_vertices() && b.index() < graph.num_vertices());
    if a == b {
        return target_paths; // trivially "connected" to itself
    }
    // Saturated edges as a hash set of ordered pairs.
    let mut used: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut found = 0usize;
    let mut path: Vec<u32> = Vec::with_capacity(max_len + 1);
    while found < target_paths {
        path.clear();
        path.push(a.raw());
        let mut on_path = vec![false; graph.num_vertices()];
        on_path[a.index()] = true;
        if !dfs(graph, a.raw(), b.raw(), max_len, &mut used, &mut path, &mut on_path) {
            break;
        }
        // Saturate the found path's edges (both directions).
        for w in path.windows(2) {
            used.insert((w[0], w[1]));
            used.insert((w[1], w[0]));
        }
        found += 1;
    }
    found
}

fn dfs(
    graph: &AdjacencyGraph,
    u: u32,
    goal: u32,
    max_len: usize,
    used: &mut std::collections::HashSet<(u32, u32)>,
    path: &mut Vec<u32>,
    on_path: &mut [bool],
) -> bool {
    if u == goal {
        return true;
    }
    if path.len() > max_len {
        return false;
    }
    for &v in graph.neighbors(CellId::from(u)) {
        if on_path[v as usize] || used.contains(&(u, v)) {
            continue;
        }
        path.push(v);
        on_path[v as usize] = true;
        if dfs(graph, v, goal, max_len, used, path, on_path) {
            return true;
        }
        path.pop();
        on_path[v as usize] = false;
    }
    false
}

/// Whether `a` and `b` are (K,L)-connected.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_tangled::kl_connectivity::{are_kl_connected, AdjacencyGraph};
///
/// // A 4-clique: any pair has 3 edge-disjoint paths of length ≤ 2.
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..4).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// for i in 0..4 {
///     for j in (i + 1)..4 {
///         b.add_anonymous_net([cells[i], cells[j]]);
///     }
/// }
/// let nl = b.finish();
/// let graph = AdjacencyGraph::build(&nl, 16);
/// assert!(are_kl_connected(&graph, cells[0], cells[3], 3, 2));
/// assert!(!are_kl_connected(&graph, cells[0], cells[3], 4, 2));
/// ```
pub fn are_kl_connected(graph: &AdjacencyGraph, a: CellId, b: CellId, k: usize, l: usize) -> bool {
    edge_disjoint_paths(graph, a, b, l, k) >= k
}

/// Whether every pair in `cluster` is (K,L)-connected — the Garbers
/// cluster predicate. Cost is `O(|cluster|² × flow)`; the paper's point
/// that this "tends to be very slow" is directly observable.
pub fn is_cluster_kl_connected(
    graph: &AdjacencyGraph,
    cluster: &CellSet,
    k: usize,
    l: usize,
) -> bool {
    let members: Vec<CellId> = cluster.iter().collect();
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if !are_kl_connected(graph, members[i], members[j], k, l) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    fn clique(n: usize) -> (Netlist, Vec<CellId>) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_anonymous_net([cells[i], cells[j]]);
            }
        }
        (b.finish(), cells)
    }

    #[test]
    fn clique_pair_connectivity() {
        let (nl, cells) = clique(5);
        let g = AdjacencyGraph::build(&nl, 16);
        // Direct edge + 3 length-2 detours = 4 edge-disjoint paths.
        assert_eq!(edge_disjoint_paths(&g, cells[0], cells[1], 2, 10), 4);
        assert!(are_kl_connected(&g, cells[0], cells[1], 4, 2));
        assert!(!are_kl_connected(&g, cells[0], cells[1], 5, 2));
    }

    #[test]
    fn chain_has_single_path() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..5).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for w in cells.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        let nl = b.finish();
        let g = AdjacencyGraph::build(&nl, 16);
        assert_eq!(edge_disjoint_paths(&g, cells[0], cells[4], 10, 5), 1);
        assert_eq!(edge_disjoint_paths(&g, cells[0], cells[4], 3, 5), 0, "too short");
    }

    #[test]
    fn whole_clique_is_kl_connected() {
        let (nl, cells) = clique(5);
        let g = AdjacencyGraph::build(&nl, 16);
        let cluster = CellSet::from_cells(nl.num_cells(), cells.iter().copied());
        assert!(is_cluster_kl_connected(&g, &cluster, 3, 2));
        assert!(!is_cluster_kl_connected(&g, &cluster, 5, 2));
    }

    #[test]
    fn kl_cluster_can_have_large_cut() {
        // The paper's first objection: a (K,2)-connected cluster may have
        // a huge cut. Build a clique whose every member also drives many
        // external 2-pin nets.
        let mut b = NetlistBuilder::new();
        let members: Vec<_> = (0..5).map(|i| b.add_cell(format!("m{i}"), 1.0)).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                b.add_anonymous_net([members[i], members[j]]);
            }
        }
        let outside_first = b.num_cells();
        b.add_anonymous_cells(50);
        for i in 0..50 {
            b.add_anonymous_net([members[i % 5], CellId::new(outside_first + i)]);
        }
        let nl = b.finish();
        let g = AdjacencyGraph::build(&nl, 16);
        let cluster = CellSet::from_cells(nl.num_cells(), members.iter().copied());
        assert!(is_cluster_kl_connected(&g, &cluster, 3, 2));
        let stats = gtl_netlist::SubsetStats::compute(&nl, &cluster);
        assert_eq!(stats.cut, 50, "(K,L)-connected but cut is huge");
    }

    #[test]
    fn fanout_nets_skipped_in_adjacency() {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(30);
        b.add_anonymous_net((0..30).map(CellId::new));
        let nl = b.finish();
        let g = AdjacencyGraph::build(&nl, 16);
        assert!(g.neighbors(CellId::new(0)).is_empty());
    }

    #[test]
    fn self_connectivity_trivial() {
        let (nl, cells) = clique(3);
        let g = AdjacencyGraph::build(&nl, 16);
        assert!(are_kl_connected(&g, cells[0], cells[0], 100, 1));
    }

    /// Regression for the old HashMap-backed edge set: repeated builds
    /// must produce byte-identical adjacency (`{:?}` compares offsets
    /// and targets), and every list must come out sorted — properties a
    /// hash-seeded iteration order does not guarantee.
    #[test]
    fn build_is_deterministic_across_runs() {
        let (nl, _) = clique(8);
        let reference = format!("{:?}", AdjacencyGraph::build(&nl, 16));
        for _ in 0..5 {
            let g = AdjacencyGraph::build(&nl, 16);
            assert_eq!(format!("{g:?}"), reference);
            for v in 0..g.num_vertices() {
                let ns = g.neighbors(gtl_netlist::CellId::new(v));
                assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted/dup list for {v}: {ns:?}");
            }
        }
    }
}
