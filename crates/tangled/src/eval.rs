//! Evaluation against known ground truth (paper Table 1, columns 9–10).
//!
//! On synthetic graphs the planted GTLs are known, so each discovered
//! group can be matched to the truth it overlaps most and scored by
//!
//! * **Miss%** — planted cells the finder failed to include, and
//! * **Over%** — extra cells the finder wrongly included,
//!
//! both relative to the planted group's size.

use gtl_netlist::{CellId, CellSet};

/// One matched (planted, found) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GtlMatch {
    /// Index into the ground-truth list.
    pub truth_index: usize,
    /// Index into the found list.
    pub found_index: usize,
    /// Size of the planted group.
    pub truth_size: usize,
    /// Size of the found group.
    pub found_size: usize,
    /// Percentage of planted cells missing from the found group.
    pub miss_pct: f64,
    /// Percentage of found cells that are not planted, relative to the
    /// planted size (the paper's "Over" column).
    pub over_pct: f64,
}

/// Result of matching found GTLs against ground truth.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MatchReport {
    /// Matched pairs, one per truth group that was recovered.
    pub matches: Vec<GtlMatch>,
    /// Indices of planted groups no found group overlaps.
    pub missed_truths: Vec<usize>,
    /// Indices of found groups that overlap no planted group.
    pub spurious_found: Vec<usize>,
}

impl MatchReport {
    /// Largest miss percentage over all matches (0.0 when empty).
    pub fn max_miss_pct(&self) -> f64 {
        self.matches.iter().map(|m| m.miss_pct).fold(0.0, f64::max)
    }

    /// Largest over percentage over all matches (0.0 when empty).
    pub fn max_over_pct(&self) -> f64 {
        self.matches.iter().map(|m| m.over_pct).fold(0.0, f64::max)
    }

    /// Whether every planted group was recovered.
    pub fn all_found(&self) -> bool {
        self.missed_truths.is_empty()
    }
}

/// Greedily matches found groups to planted groups by descending overlap.
///
/// Each truth and each found group participates in at most one match; a
/// pair must share at least one cell to match. `universe` is the netlist
/// cell count.
///
/// # Example
///
/// ```
/// use gtl_netlist::CellId;
/// use gtl_tangled::match_gtls;
///
/// let truth = vec![(0..10).map(CellId::new).collect::<Vec<_>>()];
/// let found = vec![(1..12).map(CellId::new).collect::<Vec<_>>()];
/// let report = match_gtls(&truth, &found, 20);
/// let m = report.matches[0];
/// assert!((m.miss_pct - 10.0).abs() < 1e-9);  // cell 0 missed
/// assert!((m.over_pct - 20.0).abs() < 1e-9);  // cells 10, 11 extra
/// ```
pub fn match_gtls(truths: &[Vec<CellId>], found: &[Vec<CellId>], universe: usize) -> MatchReport {
    let truth_sets: Vec<CellSet> =
        truths.iter().map(|t| CellSet::from_cells(universe, t.iter().copied())).collect();
    let found_sets: Vec<CellSet> =
        found.iter().map(|f| CellSet::from_cells(universe, f.iter().copied())).collect();

    // All overlapping pairs, best overlap first (ties: lower indices).
    let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
    for (ti, t) in truth_sets.iter().enumerate() {
        for (fi, f) in found_sets.iter().enumerate() {
            let overlap = t.intersection_len(f);
            if overlap > 0 {
                pairs.push((overlap, ti, fi));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut truth_used = vec![false; truths.len()];
    let mut found_used = vec![false; found.len()];
    let mut matches = Vec::new();
    for (overlap, ti, fi) in pairs {
        if truth_used[ti] || found_used[fi] {
            continue;
        }
        truth_used[ti] = true;
        found_used[fi] = true;
        let tsize = truth_sets[ti].len();
        let fsize = found_sets[fi].len();
        matches.push(GtlMatch {
            truth_index: ti,
            found_index: fi,
            truth_size: tsize,
            found_size: fsize,
            miss_pct: 100.0 * (tsize - overlap) as f64 / tsize as f64,
            over_pct: 100.0 * (fsize - overlap) as f64 / tsize as f64,
        });
    }
    matches.sort_by_key(|m| m.truth_index);

    MatchReport {
        matches,
        missed_truths: (0..truths.len()).filter(|&i| !truth_used[i]).collect(),
        spurious_found: (0..found.len()).filter(|&i| !found_used[i]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<usize>) -> Vec<CellId> {
        range.map(CellId::new).collect()
    }

    #[test]
    fn perfect_recovery() {
        let truth = vec![ids(0..100), ids(200..300)];
        let found = vec![ids(200..300), ids(0..100)];
        let r = match_gtls(&truth, &found, 400);
        assert!(r.all_found());
        assert!(r.spurious_found.is_empty());
        assert_eq!(r.max_miss_pct(), 0.0);
        assert_eq!(r.max_over_pct(), 0.0);
        assert_eq!(r.matches[0].found_index, 1);
    }

    #[test]
    fn partial_overlap_percentages() {
        let truth = vec![ids(0..50)];
        let found = vec![ids(10..70)]; // 40 shared, 10 missed, 20 extra
        let r = match_gtls(&truth, &found, 100);
        let m = r.matches[0];
        assert!((m.miss_pct - 20.0).abs() < 1e-9);
        assert!((m.over_pct - 40.0).abs() < 1e-9);
    }

    #[test]
    fn missed_and_spurious_reported() {
        let truth = vec![ids(0..10), ids(50..60)];
        let found = vec![ids(0..10), ids(80..90)];
        let r = match_gtls(&truth, &found, 100);
        assert_eq!(r.matches.len(), 1);
        assert_eq!(r.missed_truths, [1]);
        assert_eq!(r.spurious_found, [1]);
        assert!(!r.all_found());
    }

    #[test]
    fn best_overlap_wins() {
        // Found group overlaps both truths; it must pair with the larger
        // overlap (truth 1).
        let truth = vec![ids(0..5), ids(5..30)];
        let found = vec![ids(3..30)];
        let r = match_gtls(&truth, &found, 50);
        assert_eq!(r.matches.len(), 1);
        assert_eq!(r.matches[0].truth_index, 1);
    }

    #[test]
    fn one_found_matches_one_truth_only() {
        // Two found groups overlap the same truth: only the better one
        // matches, the other is spurious.
        let truth = vec![ids(0..20)];
        let found = vec![ids(0..19), ids(18..25)];
        let r = match_gtls(&truth, &found, 50);
        assert_eq!(r.matches.len(), 1);
        assert_eq!(r.matches[0].found_index, 0);
        assert_eq!(r.spurious_found, [1]);
    }

    #[test]
    fn empty_inputs() {
        let r = match_gtls(&[], &[], 10);
        assert!(r.matches.is_empty() && r.missed_truths.is_empty() && r.spurious_found.is_empty());
    }
}
