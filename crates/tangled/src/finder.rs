//! The top-level three-phase `TangledLogicFinder` (paper Chapter IV).
//!
//! Orchestrates `m` independent seed searches — each running Phase I
//! (ordering), Phase II (candidate extraction) and Phase III refinement —
//! through the shared deterministic execution layer
//! ([`gtl_core::exec`]), followed by the only serial step, the `O(m²)`
//! overlap pruning. Results are deterministic for a given `rng_seed`
//! regardless of the thread count, because every search derives its own
//! RNG stream from the search index via [`gtl_core::derive_stream`] and
//! the execution layer returns results in seed order.

use gtl_core::cancel::{CancelToken, Cancelled};
use gtl_netlist::{CellId, Netlist, SubsetStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ordering::LinearOrdering;

use crate::candidate::{extract_candidate, Candidate, CandidateConfig};
use crate::metrics::{self, DesignContext, MetricKind};
use crate::ordering::{GrowthConfig, OrderingGrower};
use crate::refine::{refine_candidate, RefineConfig};

/// Configuration of the three-phase finder.
///
/// Defaults mirror the paper's experimental setup where practical
/// (`lambda_threshold` 20, 3 refinement seeds, 100K ordering cap) with a
/// lighter default seed count.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FinderConfig {
    /// Number of parallel seed searches, the paper's `m` (paper: 100).
    pub num_seeds: usize,
    /// Maximum linear-ordering length `Z` (paper: 100K).
    pub max_order_len: usize,
    /// λ threshold for skipping weight updates on large nets (paper: 20).
    pub lambda_threshold: usize,
    /// Phase I selection criterion (ablation knob; paper: weight first).
    pub criterion: crate::ordering::GrowthCriterion,
    /// Metric to optimize.
    pub metric: MetricKind,
    /// Smallest group reported as a GTL.
    pub min_size: usize,
    /// A candidate's minimum score must be below this (average ≈ 1.0).
    pub accept_threshold: f64,
    /// Required post-minimum rise factor for a "clear minimum".
    pub prominence: f64,
    /// Largest GTL as a fraction of the netlist — the paper excludes
    /// "partitions that consume a huge chunk of the circuit".
    pub max_fraction: f64,
    /// Extra interior seeds per candidate in Phase III (paper: 3).
    pub refine_seeds: usize,
    /// Whether to run Phase III refinement at all (ablation knob).
    pub refine: bool,
    /// Worker threads; `0` means all available cores.
    pub threads: usize,
    /// Master RNG seed; same seed ⇒ same result, any thread count.
    pub rng_seed: u64,
    /// Fixed Rent exponent; `None` estimates one per ordering.
    pub rent_exponent: Option<f64>,
}

impl Default for FinderConfig {
    fn default() -> Self {
        Self {
            num_seeds: 32,
            max_order_len: 100_000,
            lambda_threshold: 20,
            criterion: crate::ordering::GrowthCriterion::default(),
            metric: MetricKind::default(),
            min_size: 30,
            accept_threshold: 0.9,
            prominence: 1.2,
            max_fraction: 0.5,
            refine_seeds: 3,
            refine: true,
            threads: 0,
            rng_seed: 0x5eed,
            rent_exponent: None,
        }
    }
}

impl FinderConfig {
    fn growth(&self) -> GrowthConfig {
        GrowthConfig {
            max_len: self.max_order_len,
            lambda_threshold: self.lambda_threshold,
            criterion: self.criterion,
        }
    }

    fn candidate(&self, num_cells: usize) -> CandidateConfig {
        CandidateConfig {
            metric: self.metric,
            min_size: self.min_size,
            accept_threshold: self.accept_threshold,
            prominence: self.prominence,
            max_size: ((num_cells as f64 * self.max_fraction) as usize).max(self.min_size),
            rent_exponent: self.rent_exponent,
        }
    }
}

/// A discovered group of tangled logic.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gtl {
    /// Member cells, ascending by id.
    pub cells: Vec<CellId>,
    /// Connectivity statistics (`size`, `cut`, `pins`, internal nets).
    pub stats: SubsetStats,
    /// Score under the finder's configured metric.
    pub score: f64,
    /// Normalized GTL-Score of the group.
    pub ngtl_score: f64,
    /// Density-aware GTL-Score of the group.
    pub gtl_sd: f64,
    /// Rent exponent used when scoring this group.
    pub rent_exponent: f64,
}

impl Gtl {
    /// Number of member cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the group is empty (never true for finder output).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Outcome of a finder run.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FinderResult {
    /// Final disjoint GTLs, best score first.
    pub gtls: Vec<Gtl>,
    /// Candidates produced by Phase II across all seeds (pre-pruning).
    pub num_candidates: usize,
    /// Searches whose ordering produced no clear minimum.
    pub num_empty_searches: usize,
    /// Design average pins per cell, `A(G)`.
    pub avg_pins_per_cell: f64,
    /// Mean Rent exponent over all accepted candidates.
    pub avg_rent_exponent: f64,
}

/// The three-phase tangled-logic finder.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct TangledLogicFinder<'a> {
    netlist: &'a Netlist,
    config: FinderConfig,
}

impl<'a> TangledLogicFinder<'a> {
    /// Creates a finder over `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no cells or the config requests zero
    /// seeds.
    pub fn new(netlist: &'a Netlist, config: FinderConfig) -> Self {
        assert!(netlist.num_cells() > 0, "netlist has no cells");
        assert!(config.num_seeds > 0, "at least one seed is required");
        Self { netlist, config }
    }

    /// The configuration this finder runs with.
    pub fn config(&self) -> &FinderConfig {
        &self.config
    }

    /// Runs all three phases with randomly drawn seed cells.
    pub fn run(&self) -> FinderResult {
        self.run_with_scratch(&mut crate::prune::PruneScratch::new(self.netlist.num_cells()))
    }

    /// [`TangledLogicFinder::run`] polling `token` between seed searches:
    /// workers finish the search they are on, then the run returns
    /// [`Cancelled`]. A token that never fires yields a result identical
    /// to [`TangledLogicFinder::run`] (same code path through
    /// `gtl_core::exec`).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] once the token fires.
    pub fn run_cancellable(&self, token: &CancelToken) -> Result<FinderResult, Cancelled> {
        self.run_with_scratch_cancellable(
            &mut crate::prune::PruneScratch::new(self.netlist.num_cells()),
            token,
        )
    }

    /// [`TangledLogicFinder::run`] with caller-owned pruning scratch, for
    /// services running many finds over one netlist (the bitset of the
    /// final pruning pass is reused instead of reallocated per request).
    pub fn run_with_scratch(&self, scratch: &mut crate::prune::PruneScratch) -> FinderResult {
        match self.run_scratch_impl(scratch, None) {
            Ok(result) => result,
            Err(_) => unreachable!("a run without a token cannot be cancelled"),
        }
    }

    /// [`TangledLogicFinder::run_with_scratch`] with cooperative
    /// cancellation (see [`TangledLogicFinder::run_cancellable`]).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] once the token fires.
    pub fn run_with_scratch_cancellable(
        &self,
        scratch: &mut crate::prune::PruneScratch,
        token: &CancelToken,
    ) -> Result<FinderResult, Cancelled> {
        self.run_scratch_impl(scratch, Some(token))
    }

    fn run_scratch_impl(
        &self,
        scratch: &mut crate::prune::PruneScratch,
        token: Option<&CancelToken>,
    ) -> Result<FinderResult, Cancelled> {
        // gtl-lint: allow(no-rng-outside-derive-stream, reason = "this is the master stream itself; per-seed streams derive from it")
        let mut master = SmallRng::seed_from_u64(self.config.rng_seed);
        let seeds: Vec<CellId> = (0..self.config.num_seeds)
            .map(|_| CellId::new(master.gen_range(0..self.netlist.num_cells())))
            .collect();
        self.run_core(&seeds, scratch, token)
    }

    /// Runs all three phases from caller-supplied seed cells.
    ///
    /// Useful for reproducing a specific figure (e.g. the inside/outside
    /// agglomerations of Figures 2–3) or for deterministic tests.
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of bounds.
    pub fn run_from_seeds(&self, seeds: &[CellId]) -> FinderResult {
        self.run_from_seeds_with(
            seeds,
            &mut crate::prune::PruneScratch::new(self.netlist.num_cells()),
        )
    }

    /// [`TangledLogicFinder::run_from_seeds`] with caller-owned pruning
    /// scratch (see [`TangledLogicFinder::run_with_scratch`]).
    ///
    /// # Panics
    ///
    /// Panics if any seed is out of bounds.
    pub fn run_from_seeds_with(
        &self,
        seeds: &[CellId],
        scratch: &mut crate::prune::PruneScratch,
    ) -> FinderResult {
        match self.run_core(seeds, scratch, None) {
            Ok(result) => result,
            Err(_) => unreachable!("a run without a token cannot be cancelled"),
        }
    }

    /// The shared three-phase pipeline behind every `run*` entry point;
    /// `token` (when present) is polled between seed searches and before
    /// the serial pruning pass.
    fn run_core(
        &self,
        seeds: &[CellId],
        scratch: &mut crate::prune::PruneScratch,
        token: Option<&CancelToken>,
    ) -> Result<FinderResult, Cancelled> {
        for &s in seeds {
            assert!(s.index() < self.netlist.num_cells(), "seed {s} out of bounds");
        }

        let candidate_config = self.config.candidate(self.netlist.num_cells());
        let refine_config = RefineConfig { extra_seeds: self.config.refine_seeds };

        // All fan-out goes through the shared execution layer: per-worker
        // scratch (grower + ordering buffer) is reused across the seeds a
        // worker claims, results come back in seed order, and each search
        // derives its RNG from (master seed, seed index) — so the output
        // is identical for any thread count.
        let init = |_worker: usize| SearchScratch {
            grower: OrderingGrower::new(self.netlist, self.config.growth()),
            ordering: LinearOrdering::new(),
        };
        let search = |scratch: &mut SearchScratch<'_>, index: usize| {
            let mut rng = SmallRng::seed_from_u64(gtl_core::derive_stream(
                self.config.rng_seed,
                index as u64,
            ));
            scratch.grower.grow_into(seeds[index], &mut scratch.ordering);
            let cand = extract_candidate(
                &scratch.ordering,
                self.netlist.avg_pins_per_cell(),
                &candidate_config,
            )?;
            let mut cand = if self.config.refine {
                refine_candidate(
                    self.netlist,
                    &mut scratch.grower,
                    cand,
                    &candidate_config,
                    &refine_config,
                    &mut rng,
                )
            } else {
                cand
            };
            // Canonicalize after Phase III (refinement seeds sample the
            // growth order, so sorting must not happen earlier):
            // `prune_overlapping`'s equal-score tiebreak compares the
            // cell vectors and requires them sorted.
            cand.cells.sort_unstable();
            Some(cand)
        };
        // The searches poll the token between items; the tail (pruning,
        // scoring) is cheap but still guarded so a cancelled run never
        // pays for it.
        let results: Vec<Option<Candidate>> = match token {
            None => gtl_core::parallel_map_chunked_with(
                self.config.threads,
                seeds.len(),
                gtl_core::Granularity::Auto,
                init,
                search,
            ),
            Some(token) => gtl_core::parallel_map_chunked_with_cancellable(
                self.config.threads,
                seeds.len(),
                gtl_core::Granularity::Auto,
                token,
                init,
                search,
            )?,
        };
        gtl_core::cancel::checkpoint(token)?;

        let num_empty = results.iter().filter(|r| r.is_none()).count();
        let candidates: Vec<Candidate> = results.into_iter().flatten().collect();
        let num_candidates = candidates.len();
        let avg_p = if candidates.is_empty() {
            crate::candidate::DEFAULT_RENT_EXPONENT
        } else {
            candidates.iter().map(|c| c.rent_exponent).sum::<f64>() / candidates.len() as f64
        };

        let kept =
            crate::prune::prune_overlapping_with(candidates, self.netlist.num_cells(), scratch);
        let a_g = self.netlist.avg_pins_per_cell();
        let gtls = kept
            .into_iter()
            .map(|c| {
                let ctx = DesignContext { avg_pins_per_cell: a_g, rent_exponent: c.rent_exponent };
                // Already ascending: candidates are canonicalized before
                // pruning.
                let cells = c.cells;
                Gtl {
                    ngtl_score: metrics::ngtl_score(c.stats.cut, c.stats.size, &ctx),
                    gtl_sd: metrics::gtl_sd_score(
                        c.stats.cut,
                        c.stats.size,
                        c.stats.avg_pins_per_cell(),
                        &ctx,
                    ),
                    cells,
                    stats: c.stats,
                    score: c.score,
                    rent_exponent: c.rent_exponent,
                }
            })
            .collect();

        Ok(FinderResult {
            gtls,
            num_candidates,
            num_empty_searches: num_empty,
            avg_pins_per_cell: a_g,
            avg_rent_exponent: avg_p,
        })
    }
}

/// Per-worker scratch for the execution layer: the Phase I engine's
/// `O(|V| + |E|)` buffers plus a reusable ordering, both paid for once per
/// worker instead of once per seed.
#[derive(Debug)]
struct SearchScratch<'a> {
    grower: OrderingGrower<'a>,
    ordering: LinearOrdering,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    /// Two cliques (sizes 8 and 12) embedded in a ring of sparse cells.
    fn testbed() -> (Netlist, Vec<CellId>) {
        let mut b = NetlistBuilder::new();
        let n = 120usize;
        let cells: Vec<_> = (0..n).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                b.add_anonymous_net([cells[i], cells[j]]);
            }
        }
        for i in 40..52 {
            for j in (i + 1)..52 {
                b.add_anonymous_net([cells[i], cells[j]]);
            }
        }
        for i in 0..n {
            b.add_anonymous_net([cells[i], cells[(i + 1) % n]]);
        }
        (b.finish(), cells)
    }

    fn config() -> FinderConfig {
        FinderConfig {
            num_seeds: 24,
            min_size: 5,
            max_order_len: 60,
            rng_seed: 42,
            ..FinderConfig::default()
        }
    }

    #[test]
    fn finds_both_cliques() {
        let (nl, cells) = testbed();
        let result = TangledLogicFinder::new(&nl, config()).run();
        assert!(!result.gtls.is_empty(), "no GTL found");
        // The best GTL must be one of the cliques, nearly exactly.
        let sizes: Vec<usize> = result.gtls.iter().map(|g| g.len()).collect();
        assert!(
            sizes.iter().any(|&s| (7..=9).contains(&s) || (11..=13).contains(&s)),
            "sizes {sizes:?}"
        );
        // GTLs are disjoint.
        for i in 0..result.gtls.len() {
            for j in (i + 1)..result.gtls.len() {
                let a: std::collections::HashSet<_> = result.gtls[i].cells.iter().collect();
                assert!(result.gtls[j].cells.iter().all(|c| !a.contains(c)));
            }
        }
        let _ = cells;
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (nl, _) = testbed();
        let mut c1 = config();
        c1.threads = 1;
        let mut c4 = config();
        c4.threads = 4;
        let r1 = TangledLogicFinder::new(&nl, c1).run();
        let r4 = TangledLogicFinder::new(&nl, c4).run();
        assert_eq!(r1.gtls.len(), r4.gtls.len());
        for (a, b) in r1.gtls.iter().zip(&r4.gtls) {
            assert_eq!(a.cells, b.cells);
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn run_from_seeds_inside_clique() {
        let (nl, cells) = testbed();
        let finder = TangledLogicFinder::new(&nl, config());
        let result = finder.run_from_seeds(&[cells[42], cells[3]]);
        assert!(result.gtls.len() >= 2, "found {}", result.gtls.len());
        assert!(result.gtls.iter().all(|g| g.score < 0.9));
    }

    #[test]
    fn seed_outside_structures_yields_nothing() {
        let (nl, cells) = testbed();
        let finder = TangledLogicFinder::new(&nl, config());
        // Seed deep in the sparse ring, far from the cliques, with a short
        // ordering that cannot reach them.
        let mut cfg = config();
        cfg.max_order_len = 10;
        let finder_short = TangledLogicFinder::new(&nl, cfg);
        let result = finder_short.run_from_seeds(&[cells[90]]);
        assert_eq!(result.gtls.len(), 0);
        assert_eq!(result.num_empty_searches, 1);
        let _ = finder;
    }

    #[test]
    fn scores_reported_for_both_metrics() {
        let (nl, cells) = testbed();
        let result = TangledLogicFinder::new(&nl, config()).run_from_seeds(&[cells[44]]);
        let gtl = &result.gtls[0];
        assert!(gtl.ngtl_score.is_finite() && gtl.gtl_sd.is_finite());
        assert!(gtl.score > 0.0);
        assert_eq!(gtl.stats.size, gtl.len());
        assert!(!gtl.is_empty());
    }

    #[test]
    fn refine_disabled_still_works() {
        let (nl, _) = testbed();
        let mut cfg = config();
        cfg.refine = false;
        let result = TangledLogicFinder::new(&nl, cfg).run();
        assert!(!result.gtls.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let (nl, _) = testbed();
        let mut cfg = config();
        cfg.num_seeds = 0;
        let _ = TangledLogicFinder::new(&nl, cfg);
    }

    #[test]
    fn cancellable_run_with_live_token_matches_plain_run() {
        let (nl, _) = testbed();
        let finder = TangledLogicFinder::new(&nl, config());
        let plain = format!("{:?}", finder.run());
        let token = CancelToken::new();
        let cancellable = format!("{:?}", finder.run_cancellable(&token).unwrap());
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn pre_cancelled_token_aborts_the_run() {
        let (nl, _) = testbed();
        let finder = TangledLogicFinder::new(&nl, config());
        let token = CancelToken::new();
        token.cancel();
        let err = finder.run_cancellable(&token).unwrap_err();
        assert_eq!(err.reason, gtl_core::cancel::CancelReason::Cancelled);
    }

    #[test]
    fn expired_deadline_aborts_with_deadline_reason() {
        let (nl, _) = testbed();
        let finder = TangledLogicFinder::new(&nl, config());
        let token =
            CancelToken::with_deadline(gtl_core::cancel::Deadline::at(std::time::Instant::now()));
        let err = finder.run_cancellable(&token).unwrap_err();
        assert_eq!(err.reason, gtl_core::cancel::CancelReason::DeadlineExceeded);
    }

    /// The execution-layer determinism contract, end-to-end: the full
    /// `FinderResult` must be byte-identical (same `Debug` rendering,
    /// which covers every field of every GTL) for 1, 2 and 8 workers on a
    /// planted-clique fixture.
    #[test]
    fn result_identical_for_1_2_8_workers() {
        let (nl, _truth) = crate::testutil::cliques_in_background(400, &[(40, 16), (200, 24)], 7);
        let base = FinderConfig {
            num_seeds: 32,
            min_size: 8,
            max_order_len: 120,
            rng_seed: 0xD0C,
            ..FinderConfig::default()
        };
        let run = |threads: usize| {
            let config = FinderConfig { threads, ..base };
            format!("{:?}", TangledLogicFinder::new(&nl, config).run())
        };
        let serial = run(1);
        assert!(serial.contains("Gtl"), "fixture found no GTLs: {serial}");
        for threads in [2, 8] {
            assert_eq!(serial, run(threads), "output changed with {threads} workers");
        }
    }
}
