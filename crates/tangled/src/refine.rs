//! Phase III (first half): genetic-style candidate refinement.
//!
//! A candidate grown from a random seed can be slightly off — a seed near
//! the boundary of a real GTL drags in outside cells. The paper's fix
//! (§3.2.3, algorithm III.1–III.13): re-run Phases I–II from a few seeds
//! *inside* the candidate, then close the family of groups under pairwise
//! union, intersection and difference, and keep the best-scoring member.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::NetlistBuilder;
//! use gtl_tangled::{CandidateConfig, GrowthConfig, OrderingGrower};
//! use gtl_tangled::candidate::extract_candidate;
//! use gtl_tangled::refine::{refine_candidate, RefineConfig};
//! use rand::SeedableRng;
//!
//! // 8-clique in a scrambled sparse background; refinement keeps (or
//! // improves) the clique candidate.
//! let mut b = NetlistBuilder::new();
//! let cells: Vec<_> = (0..80).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
//! for i in 0..8 {
//!     for j in (i + 1)..8 {
//!         b.add_anonymous_net([cells[i], cells[j]]);
//!     }
//! }
//! // Scrambled background wiring between the non-clique cells, plus one
//! // link tying the clique to the rest.
//! for i in 8..80 {
//!     b.add_anonymous_net([cells[i], cells[8 + (i * 7 + 11) % (80 - 8)]]);
//!     b.add_anonymous_net([cells[i], cells[8 + (i * 13 + 29) % (80 - 8)]]);
//! }
//! b.add_anonymous_net([cells[5], cells[30]]);
//! let nl = b.finish();
//!
//! let cand_cfg = CandidateConfig { min_size: 4, max_size: 40, ..CandidateConfig::default() };
//! let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
//! let ordering = grower.grow(cells[0]);
//! let cand = extract_candidate(&ordering, nl.avg_pins_per_cell(), &cand_cfg).unwrap();
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let refined = refine_candidate(
//!     &nl, &mut grower, cand, &cand_cfg, &RefineConfig::default(), &mut rng,
//! );
//! assert!(refined.score <= 0.5);
//! ```

use gtl_netlist::{CellSet, Netlist, SubsetStats};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::candidate::{extract_candidate, Candidate, CandidateConfig};
use crate::metrics::DesignContext;
use crate::ordering::OrderingGrower;

/// Parameters for Phase III refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RefineConfig {
    /// How many extra seeds inside the candidate to grow from (paper: 3).
    pub extra_seeds: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self { extra_seeds: 3 }
    }
}

/// Refines `candidate` per the paper's Phase III and returns the best
/// family member (possibly the original candidate itself).
///
/// Every family member is re-scored exactly (its cut is recomputed from
/// the netlist, not from an ordering profile) using the candidate's Rent
/// exponent, so members produced by set operations compete fairly.
pub fn refine_candidate<R: Rng>(
    netlist: &Netlist,
    grower: &mut OrderingGrower<'_>,
    candidate: Candidate,
    candidate_config: &CandidateConfig,
    config: &RefineConfig,
    rng: &mut R,
) -> Candidate {
    let universe = netlist.num_cells();
    let base = CellSet::from_cells(universe, candidate.cells.iter().copied());

    // Grow siblings from random interior seeds (algorithm III.2–III.3),
    // reusing one ordering buffer across the growths.
    let mut family: Vec<CellSet> = vec![base];
    let mut picks = candidate.cells.clone();
    picks.shuffle(rng);
    let mut ordering = crate::ordering::LinearOrdering::new();
    for seed in picks.into_iter().take(config.extra_seeds) {
        grower.grow_into(seed, &mut ordering);
        if let Some(sibling) =
            extract_candidate(&ordering, netlist.avg_pins_per_cell(), candidate_config)
        {
            family.push(CellSet::from_cells(universe, sibling.cells.iter().copied()));
        }
    }

    // Close the family under pairwise ∩, ∪ and both differences
    // (algorithm III.6–III.12 walks each unordered pair once).
    let initial = family.len();
    for i in 0..initial {
        for j in (i + 1)..initial {
            let inter = family[i].intersection(&family[j]);
            let union = family[i].union(&family[j]);
            let a_only = family[i].difference(&inter);
            let b_only = family[j].difference(&inter);
            family.extend([union, a_only, b_only, inter]);
        }
    }

    // Exact re-scoring; keep the best member large enough to matter.
    let ctx = DesignContext::new(netlist, candidate.rent_exponent);
    let mut best: Option<(f64, CellSet, SubsetStats)> = None;
    for set in family {
        if set.len() < candidate_config.min_size {
            continue;
        }
        let stats = SubsetStats::compute(netlist, &set);
        let score = candidate_config.metric.score(&stats, &ctx);
        if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
            best = Some((score, set, stats));
        }
    }

    match best {
        Some((score, set, stats)) => Candidate {
            cells: set.to_vec(),
            stats,
            score,
            rent_exponent: candidate.rent_exponent,
            minimum_index: candidate.minimum_index,
        },
        // The whole family fell below min_size (can only happen with
        // degenerate configs); keep the original.
        None => candidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::GrowthConfig;
    use gtl_netlist::CellId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Clique of `k` cells planted in a random background; returns the
    /// netlist, the planted members, and a candidate config.
    fn setup(k: usize) -> (Netlist, Vec<CellId>, CandidateConfig) {
        let (nl, truth) = crate::testutil::cliques_in_background(200, &[(20, k)], 11);
        (
            nl,
            truth.into_iter().next().unwrap(),
            CandidateConfig { min_size: 4, max_size: 60, ..CandidateConfig::default() },
        )
    }

    use gtl_netlist::Netlist;

    #[test]
    fn refinement_never_worsens_score() {
        let (nl, cells, cfg) = setup(8);
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = grower.grow(cells[3]);
        let cand = extract_candidate(&ord, nl.avg_pins_per_cell(), &cfg).unwrap();
        let before = cand.score;
        let mut rng = SmallRng::seed_from_u64(1);
        let refined =
            refine_candidate(&nl, &mut grower, cand, &cfg, &RefineConfig::default(), &mut rng);
        assert!(refined.score <= before + 1e-12, "{} > {}", refined.score, before);
    }

    #[test]
    fn refinement_trims_polluted_candidate() {
        let (nl, cells, cfg) = setup(10);
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        // Hand-build a polluted candidate: the clique plus 4 background
        // cells (the plant sits at offset 20, so ids 0..4 are background).
        let mut polluted: Vec<CellId> = cells.clone();
        polluted.extend((0..4).map(CellId::new));
        polluted.sort_unstable();
        let set = CellSet::from_cells(nl.num_cells(), polluted.iter().copied());
        let stats = SubsetStats::compute(&nl, &set);
        let ctx = DesignContext::new(&nl, 0.6);
        let cand = Candidate {
            cells: polluted,
            stats,
            score: cfg.metric.score(&stats, &ctx),
            rent_exponent: 0.6,
            minimum_index: 13,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let refined =
            refine_candidate(&nl, &mut grower, cand, &cfg, &RefineConfig::default(), &mut rng);
        // The refined candidate should be the bare clique (10 cells).
        assert_eq!(refined.cells.len(), 10, "refined to {:?}", refined.cells.len());
        for cell in &cells[..10] {
            assert!(refined.cells.contains(cell));
        }
    }

    #[test]
    fn zero_extra_seeds_still_works() {
        let (nl, cells, cfg) = setup(8);
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = grower.grow(cells[0]);
        let cand = extract_candidate(&ord, nl.avg_pins_per_cell(), &cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let refined = refine_candidate(
            &nl,
            &mut grower,
            cand.clone(),
            &cfg,
            &RefineConfig { extra_seeds: 0 },
            &mut rng,
        );
        // Family = {base} only; result equals the base candidate's set.
        assert_eq!(refined.cells.len(), cand.cells.len());
    }

    #[test]
    fn refinement_is_deterministic_given_rng() {
        let (nl, cells, cfg) = setup(8);
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = grower.grow(cells[2]);
        let cand = extract_candidate(&ord, nl.avg_pins_per_cell(), &cfg).unwrap();
        let r1 = refine_candidate(
            &nl,
            &mut grower,
            cand.clone(),
            &cfg,
            &RefineConfig::default(),
            &mut SmallRng::seed_from_u64(9),
        );
        let r2 = refine_candidate(
            &nl,
            &mut grower,
            cand,
            &cfg,
            &RefineConfig::default(),
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(r1.cells, r2.cells);
        assert_eq!(r1.score, r2.score);
    }
}
