//! Phase I: linear-ordering generation by greedy cell agglomeration.
//!
//! Starting from a seed cell, the grower repeatedly adds the frontier cell
//! with the strongest connection to the growing group (paper §3.2.1). The
//! connection weight of a candidate `v` is
//!
//! ```text
//! w(v) = Σ over nets e ∋ v with e ∩ C ≠ ∅ of 1 / (λ(e) + 1)
//! ```
//!
//! where `λ(e)` is the number of pins of `e` outside the group (`v`
//! included). Nets mostly inside the group weigh more, so growth prefers
//! the interior of a tangled structure. Ties are broken by the smaller cut
//! increase (the paper's min-cut secondary criterion), then by cell id for
//! determinism.
//!
//! Following the paper's complexity knob, weight *updates* are skipped for
//! nets with `λ(e) ≥ lambda_threshold` (default 20) — their per-cell weight
//! contribution changes negligibly — while the cut and the absorb counts
//! stay exact.
//!
//! The produced [`LinearOrdering`] records, for every prefix of the order,
//! the cut `T(C)`, the cumulative pin count, and the number of absorbed
//! (fully internal) nets, which is everything Phase II needs to evaluate
//! the score curve in `O(Z)`.
//!
//! # Example
//!
//! ```
//! use gtl_netlist::{CellId, NetlistBuilder};
//! use gtl_tangled::{GrowthConfig, OrderingGrower};
//!
//! // A triangle plus a pendant cell: growth from inside the triangle
//! // gathers the triangle before the pendant.
//! let mut b = NetlistBuilder::new();
//! let c: Vec<_> = (0..4).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
//! b.add_anonymous_net([c[0], c[1]]);
//! b.add_anonymous_net([c[1], c[2]]);
//! b.add_anonymous_net([c[0], c[2]]);
//! b.add_anonymous_net([c[2], c[3]]);
//! let nl = b.finish();
//!
//! let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
//! let ordering = grower.grow(c[0]);
//! assert_eq!(ordering.cells()[3], c[3]); // pendant joins last
//! assert_eq!(ordering.cut_at(3), 0);     // whole graph absorbed
//! ```

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use gtl_netlist::{CellId, Netlist, SubsetStats};

/// Which quantity drives candidate selection during growth.
///
/// The paper argues (§3.2.1) that emphasizing the connection weight over
/// min-cut "is particularly important at the beginning of cell
/// agglomeration": min-cut-first tends to pull in weakly connected outside
/// cells. [`CutFirst`](GrowthCriterion::CutFirst) exists for the ablation
/// benches that demonstrate exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GrowthCriterion {
    /// Maximize connection weight; break ties by smaller cut increase
    /// (the paper's choice).
    #[default]
    WeightFirst,
    /// Minimize cut increase; break ties by larger connection weight
    /// (the baseline the paper argues against).
    CutFirst,
}

/// Tuning parameters for the Phase I grower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrowthConfig {
    /// Maximum ordering length `Z` (paper: at most 100K cells).
    pub max_len: usize,
    /// Nets with at least this many external pins do not propagate weight
    /// updates (paper: 20). Use `usize::MAX` for exact weights.
    pub lambda_threshold: usize,
    /// Primary/secondary selection criterion.
    pub criterion: GrowthCriterion,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        Self { max_len: 100_000, lambda_threshold: 20, criterion: GrowthCriterion::default() }
    }
}

/// A linear ordering of cells with per-prefix connectivity profiles.
///
/// Produced by [`OrderingGrower::grow`]; consumed by Phase II candidate
/// extraction and by the figure benches that plot score-versus-size curves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearOrdering {
    cells: Vec<CellId>,
    cut_profile: Vec<u32>,
    pin_profile: Vec<u64>,
    absorbed_profile: Vec<u32>,
}

impl LinearOrdering {
    /// An empty ordering, ready to be filled by
    /// [`OrderingGrower::grow_into`] (its buffers are reused across
    /// growths).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the ordering, keeping the allocated buffers.
    fn clear(&mut self) {
        self.cells.clear();
        self.cut_profile.clear();
        self.pin_profile.clear();
        self.absorbed_profile.clear();
    }

    /// The cells in agglomeration order; the seed is first.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells in the ordering.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Net cut `T(C_k)` of the prefix holding the first `k + 1` cells.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn cut_at(&self, k: usize) -> usize {
        self.cut_profile[k] as usize
    }

    /// Total pins on the first `k + 1` cells.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn pins_at(&self, k: usize) -> usize {
        self.pin_profile[k] as usize
    }

    /// Full [`SubsetStats`] of the prefix holding the first `k + 1` cells.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn stats_at(&self, k: usize) -> SubsetStats {
        SubsetStats {
            size: k + 1,
            cut: self.cut_profile[k] as usize,
            pins: self.pin_profile[k] as usize,
            internal_nets: self.absorbed_profile[k] as usize,
        }
    }

    /// The first `k + 1` cells as a vector (one candidate group).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn prefix(&self, k: usize) -> Vec<CellId> {
        self.cells[..=k].to_vec()
    }
}

/// Max-heap entry holding a precomputed (primary, secondary) key; higher
/// keys win, then lower cell id (for determinism). Entries are lazy —
/// stale ones are skipped at pop time by comparing against the current
/// per-cell values.
#[derive(Debug, Clone, Copy)]
struct Entry {
    primary: f64,
    secondary: f64,
    cell: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.primary
            .total_cmp(&other.primary)
            .then_with(|| self.secondary.total_cmp(&other.secondary))
            .then_with(|| other.cell.cmp(&self.cell))
    }
}

/// Reusable Phase I engine.
///
/// Holds `O(|V| + |E|)` scratch buffers so that running many seeds on the
/// same netlist (the paper launches 100) only pays for the cells and nets
/// actually touched by each growth, not for re-allocation.
#[derive(Debug)]
pub struct OrderingGrower<'a> {
    netlist: &'a Netlist,
    config: GrowthConfig,
    in_group: Vec<bool>,
    /// Pins of each net inside the group.
    net_inside: Vec<u32>,
    /// Current connection weight of each frontier cell.
    weight: Vec<f64>,
    /// Incident nets of each cell that are touched (≥ 1 pin inside).
    touched_nets: Vec<u32>,
    /// Incident nets of each cell where the cell is the only outside pin.
    absorb: Vec<u32>,
    cell_dirty: Vec<bool>,
    dirty_cells: Vec<u32>,
    dirty_nets: Vec<u32>,
    heap: BinaryHeap<Entry>,
}

impl<'a> OrderingGrower<'a> {
    /// Creates a grower for `netlist`.
    pub fn new(netlist: &'a Netlist, config: GrowthConfig) -> Self {
        Self {
            netlist,
            config,
            in_group: vec![false; netlist.num_cells()],
            net_inside: vec![0; netlist.num_nets()],
            weight: vec![0.0; netlist.num_cells()],
            touched_nets: vec![0; netlist.num_cells()],
            absorb: vec![0; netlist.num_cells()],
            cell_dirty: vec![false; netlist.num_cells()],
            dirty_cells: Vec::new(),
            dirty_nets: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// The configuration this grower runs with.
    pub fn config(&self) -> &GrowthConfig {
        &self.config
    }

    /// Grows a linear ordering from `seed`.
    ///
    /// The ordering ends when `max_len` cells are gathered or the connected
    /// region around the seed is exhausted.
    ///
    /// Allocates a fresh [`LinearOrdering`]; hot paths that run many
    /// growths should prefer [`Self::grow_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is out of bounds for the netlist.
    pub fn grow(&mut self, seed: CellId) -> LinearOrdering {
        let mut ordering = LinearOrdering::new();
        self.grow_into(seed, &mut ordering);
        ordering
    }

    /// Grows a linear ordering from `seed` into a caller-owned buffer,
    /// reusing its allocations (`out` is cleared first).
    ///
    /// The result is identical to [`Self::grow`] — buffer reuse is
    /// invisible in the output, which is what lets per-worker scratch
    /// state satisfy the execution layer's determinism contract
    /// (see [`gtl_core`]).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is out of bounds for the netlist.
    pub fn grow_into(&mut self, seed: CellId, out: &mut LinearOrdering) {
        assert!(seed.index() < self.netlist.num_cells(), "seed {seed} out of bounds");
        self.reset();

        let cap = self.config.max_len.min(self.netlist.num_cells());
        out.clear();
        out.cells.reserve(cap);
        out.cut_profile.reserve(cap);
        out.pin_profile.reserve(cap);
        out.absorbed_profile.reserve(cap);

        let mut cut = 0i64;
        let mut pins = 0u64;
        let mut absorbed = 0i64;

        self.add_cell(seed, &mut cut, &mut pins, &mut absorbed, out);

        while out.cells.len() < self.config.max_len {
            let Some(next) = self.pop_best() else { break };
            self.add_cell(next, &mut cut, &mut pins, &mut absorbed, out);
        }
    }

    /// Pops the best live frontier cell, skipping stale heap entries.
    fn pop_best(&mut self) -> Option<CellId> {
        while let Some(e) = self.heap.pop() {
            let c = e.cell as usize;
            if self.in_group[c] {
                continue;
            }
            let (primary, secondary) = self.keys(CellId::from(e.cell));
            if e.primary == primary && e.secondary == secondary {
                return Some(CellId::from(e.cell));
            }
        }
        None
    }

    /// The (primary, secondary) max-heap key of a frontier cell under the
    /// configured criterion.
    #[inline]
    fn keys(&self, cell: CellId) -> (f64, f64) {
        let w = self.weight[cell.index()];
        let d = -(self.delta_cut(cell) as f64); // higher = smaller cut growth
        match self.config.criterion {
            GrowthCriterion::WeightFirst => (w, d),
            GrowthCriterion::CutFirst => (d, w),
        }
    }

    /// Cut increase if `cell` were added now: new nets touched minus nets
    /// absorbed (cell is their last outside pin). Used as tie-break.
    #[inline]
    fn delta_cut(&self, cell: CellId) -> i32 {
        let untouched =
            self.netlist.cell_degree(cell) as i32 - self.touched_nets[cell.index()] as i32;
        untouched - self.absorb[cell.index()] as i32
    }

    #[inline]
    fn mark_dirty(&mut self, cell: CellId) {
        if !self.cell_dirty[cell.index()] {
            self.cell_dirty[cell.index()] = true;
            self.dirty_cells.push(cell.raw());
        }
    }

    #[inline]
    fn push_entry(&mut self, cell: CellId) {
        let (primary, secondary) = self.keys(cell);
        self.heap.push(Entry { primary, secondary, cell: cell.raw() });
    }

    fn add_cell(
        &mut self,
        v: CellId,
        cut: &mut i64,
        pins: &mut u64,
        absorbed: &mut i64,
        ordering: &mut LinearOrdering,
    ) {
        debug_assert!(!self.in_group[v.index()]);
        self.mark_dirty(v);
        self.in_group[v.index()] = true;
        *pins += self.netlist.cell_degree(v) as u64;

        for i in 0..self.netlist.cell_nets(v).len() {
            let net = self.netlist.cell_nets(v)[i];
            let deg = self.netlist.net_degree(net);
            let old_in = self.net_inside[net.index()] as usize;
            if old_in == 0 {
                self.dirty_nets.push(net.raw());
            }
            self.net_inside[net.index()] = (old_in + 1) as u32;
            let new_in = old_in + 1;

            let was_cut = old_in > 0 && old_in < deg;
            let is_cut = new_in < deg; // new_in > 0 always
            *cut += is_cut as i64 - was_cut as i64;
            if new_in == deg {
                *absorbed += 1;
            }

            let outside_new = deg - new_in;
            if old_in == 0 {
                // First touch: every other pin becomes (or strengthens) a
                // frontier cell.
                let w = 1.0 / (outside_new as f64 + 1.0);
                for j in 0..deg {
                    let u = self.netlist.net_cells(net)[j];
                    if u == v || self.in_group[u.index()] {
                        continue;
                    }
                    self.mark_dirty(u);
                    self.touched_nets[u.index()] += 1;
                    self.weight[u.index()] += w;
                    self.push_entry(u);
                }
            } else {
                // The net shrank by one outside pin; update frontier weights
                // unless the net is large (the paper's λ ≥ 20 skip).
                let outside_old = deg - old_in;
                if outside_old < self.config.lambda_threshold.saturating_add(1) {
                    let dw = 1.0 / (outside_new as f64 + 1.0) - 1.0 / (outside_old as f64 + 1.0);
                    for j in 0..deg {
                        let u = self.netlist.net_cells(net)[j];
                        if self.in_group[u.index()] {
                            continue;
                        }
                        self.mark_dirty(u);
                        self.weight[u.index()] += dw;
                        self.push_entry(u);
                    }
                }
            }

            if outside_new == 1 {
                // Exactly one pin remains outside: adding it would absorb
                // the net. Track for the min-cut tie-break.
                for j in 0..deg {
                    let u = self.netlist.net_cells(net)[j];
                    if !self.in_group[u.index()] {
                        self.mark_dirty(u);
                        self.absorb[u.index()] += 1;
                        self.push_entry(u);
                        break;
                    }
                }
            }
        }

        ordering.cells.push(v);
        ordering.cut_profile.push(u32::try_from(*cut).expect("cut fits u32"));
        ordering.pin_profile.push(*pins);
        ordering.absorbed_profile.push(u32::try_from(*absorbed).expect("absorbed fits u32"));
    }

    /// Clears only the state touched by the previous growth.
    fn reset(&mut self) {
        for raw in self.dirty_cells.drain(..) {
            let i = raw as usize;
            self.in_group[i] = false;
            self.weight[i] = 0.0;
            self.touched_nets[i] = 0;
            self.absorb[i] = 0;
            self.cell_dirty[i] = false;
        }
        for raw in self.dirty_nets.drain(..) {
            self.net_inside[raw as usize] = 0;
        }
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellSet, NetlistBuilder};

    /// Builds two 5-cliques bridged by a single 2-pin net.
    fn two_cliques() -> (Netlist, Vec<CellId>) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..10).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for base in [0, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    b.add_anonymous_net([cells[base + i], cells[base + j]]);
                }
            }
        }
        b.add_anonymous_net([cells[0], cells[5]]);
        (b.finish(), cells)
    }

    #[test]
    fn grows_clique_before_bridge() {
        let (nl, cells) = two_cliques();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = g.grow(cells[1]);
        assert_eq!(ord.len(), 10);
        // First 5 cells must be exactly the first clique.
        let first: CellSet = ord.cells()[..5].iter().copied().collect();
        for (i, &cell) in cells.iter().enumerate().take(5) {
            assert!(first.contains(cell), "clique member {i} missing from prefix");
        }
        // Cut at the clique boundary is exactly the bridge net.
        assert_eq!(ord.cut_at(4), 1);
        // After absorbing everything the cut is zero.
        assert_eq!(ord.cut_at(9), 0);
    }

    #[test]
    fn profiles_match_direct_subset_stats() {
        let (nl, cells) = two_cliques();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = g.grow(cells[7]);
        for k in 0..ord.len() {
            let set: CellSet =
                CellSet::from_cells(nl.num_cells(), ord.cells()[..=k].iter().copied());
            let direct = SubsetStats::compute(&nl, &set);
            let profiled = ord.stats_at(k);
            assert_eq!(direct, profiled, "prefix {k}");
        }
    }

    #[test]
    fn max_len_respected() {
        let (nl, cells) = two_cliques();
        let mut g =
            OrderingGrower::new(&nl, GrowthConfig { max_len: 3, ..GrowthConfig::default() });
        let ord = g.grow(cells[0]);
        assert_eq!(ord.len(), 3);
    }

    #[test]
    fn disconnected_region_stops_early() {
        let mut b = NetlistBuilder::new();
        let c: Vec<_> = (0..4).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        b.add_anonymous_net([c[0], c[1]]);
        b.add_anonymous_net([c[2], c[3]]);
        let nl = b.finish();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = g.grow(c[0]);
        assert_eq!(ord.len(), 2);
        assert_eq!(ord.cut_at(1), 0);
    }

    #[test]
    fn grow_into_reuses_buffer_and_matches_grow() {
        let (nl, cells) = two_cliques();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let fresh = g.grow(cells[6]);
        let mut reused = LinearOrdering::new();
        // Fill with one growth, then overwrite with another: the reused
        // buffer must leave no trace of its previous contents.
        g.grow_into(cells[1], &mut reused);
        g.grow_into(cells[6], &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn grower_is_reusable_and_deterministic() {
        let (nl, cells) = two_cliques();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let a = g.grow(cells[2]);
        let b = g.grow(cells[8]);
        let a2 = g.grow(cells[2]);
        assert_eq!(a, a2, "same seed must reproduce the same ordering");
        assert_ne!(a.cells()[0], b.cells()[0]);
    }

    #[test]
    fn isolated_seed_yields_singleton() {
        let mut b = NetlistBuilder::new();
        let c0 = b.add_cell("c0", 1.0);
        b.add_cell("c1", 1.0);
        let nl = b.finish();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = g.grow(c0);
        assert_eq!(ord.len(), 1);
        assert_eq!(ord.cut_at(0), 0);
        assert_eq!(ord.pins_at(0), 0);
    }

    #[test]
    fn exact_weights_match_thresholded_on_small_nets() {
        // With all nets below the threshold the λ-skip changes nothing.
        let (nl, cells) = two_cliques();
        let mut exact = OrderingGrower::new(
            &nl,
            GrowthConfig { lambda_threshold: usize::MAX, ..GrowthConfig::default() },
        );
        let mut thresh = OrderingGrower::new(&nl, GrowthConfig::default());
        assert_eq!(exact.grow(cells[3]), thresh.grow(cells[3]));
    }

    #[test]
    fn weight_prefers_small_nets() {
        // Seed s is on a 2-pin net to a, and a 4-pin net to {b, c, d}.
        // The 2-pin neighbor has weight 1/2 > 1/4 and must be added first.
        let mut bld = NetlistBuilder::new();
        let s = bld.add_cell("s", 1.0);
        let a = bld.add_cell("a", 1.0);
        let b = bld.add_cell("b", 1.0);
        let c = bld.add_cell("c", 1.0);
        let d = bld.add_cell("d", 1.0);
        bld.add_anonymous_net([s, a]);
        bld.add_anonymous_net([s, b, c, d]);
        let nl = bld.finish();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = g.grow(s);
        assert_eq!(ord.cells()[1], a);
    }

    #[test]
    fn tie_break_prefers_absorbing_cell() {
        // Both x and y connect to the seed via one 2-pin net each (equal
        // weight). x has a second net to the seed's other net partner…
        // Construct: s-x, s-y, plus net {x, s} duplicated is deduped, so:
        // s-x (2pin), s-y (2pin), and x-z (2pin) gives x delta_cut = 1-0?
        // Simpler: y is degree-1 (only net to s) → adding y absorbs its
        // net (delta −… ) while x has an extra outside net (delta bigger).
        let mut bld = NetlistBuilder::new();
        let s = bld.add_cell("s", 1.0);
        let x = bld.add_cell("x", 1.0);
        let y = bld.add_cell("y", 1.0);
        let z = bld.add_cell("z", 1.0);
        bld.add_anonymous_net([s, x]);
        bld.add_anonymous_net([s, y]);
        bld.add_anonymous_net([x, z]);
        let nl = bld.finish();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let ord = g.grow(s);
        // x and y have equal weight 1/2; y's delta_cut = -1 (absorbs s-y),
        // x's delta_cut = 0 (absorbs s-x but opens x-z).
        assert_eq!(ord.cells()[1], y);
    }

    #[test]
    fn cut_first_criterion_changes_growth() {
        // Seed s has a 2-pin net to a (weight ½) and a 4-pin net to
        // {b, c, d} (weight ¼ each); b also hangs on a pendant net.
        // WeightFirst picks a (strongest connection); CutFirst prefers
        // the candidate with the smallest cut growth — c or d (degree 1,
        // absorb-eligible) over a only when deltas differ; construct so
        // they do: give a an extra outside net.
        let mut bld = NetlistBuilder::new();
        let s = bld.add_cell("s", 1.0);
        let a = bld.add_cell("a", 1.0);
        let b = bld.add_cell("b", 1.0);
        let c = bld.add_cell("c", 1.0);
        let d = bld.add_cell("d", 1.0);
        let e = bld.add_cell("e", 1.0);
        bld.add_anonymous_net([s, a]);
        bld.add_anonymous_net([a, e]); // a has an extra outside net
        bld.add_anonymous_net([s, b, c, d]);
        let nl = bld.finish();

        let weight_first = OrderingGrower::new(&nl, GrowthConfig::default()).grow(s);
        assert_eq!(weight_first.cells()[1], a, "weight-first picks the ½-weight neighbor");

        let cut_first = OrderingGrower::new(
            &nl,
            GrowthConfig { criterion: GrowthCriterion::CutFirst, ..GrowthConfig::default() },
        )
        .grow(s);
        // a would add net a-e to the cut (Δ = +1 − 1 = 0); b/c/d keep the
        // 4-pin net in the cut without opening a new one but don't absorb
        // it either (Δ = 0 − 0 = 0)… ties resolve by weight then id; the
        // essential check is that the orders differ and profiles stay
        // exact.
        assert_eq!(cut_first.len(), weight_first.len());
        for k in 0..cut_first.len() {
            let set: gtl_netlist::CellSet =
                CellSet::from_cells(nl.num_cells(), cut_first.cells()[..=k].iter().copied());
            assert_eq!(SubsetStats::compute(&nl, &set), cut_first.stats_at(k));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn seed_out_of_bounds_panics() {
        let (nl, _) = two_cliques();
        let mut g = OrderingGrower::new(&nl, GrowthConfig::default());
        let _ = g.grow(CellId::new(999));
    }
}
