//! Tangled-logic detection: the core contribution of *"Detecting Tangled
//! Logic Structures in VLSI Netlists"* (Jindal et al., DAC 2010).
//!
//! A **GTL** (Group of Tangled Logic) is a large subset of netlist cells —
//! hundreds to tens of thousands — whose internal connectivity is far higher
//! than its boundary connectivity. GTLs create routing hotspots when a
//! placer pulls them together; identifying them before placement allows
//! cell inflation, soft-block floorplanning, or re-synthesis.
//!
//! This crate implements:
//!
//! * the paper's **metrics** ([`metrics`]): `GTL-Score`, normalized
//!   `nGTL-Score` and density-aware `GTL-SD`, all built on Rent's rule so
//!   that groups of *different sizes* are comparable — plus the classical
//!   baselines they are compared against (ratio cut, absorption, scaled
//!   cost, Rent-exponent cost, degree separation);
//! * the **three-phase finder** ([`TangledLogicFinder`]):
//!   Phase I grows a linear ordering from a seed ([`ordering`]), Phase II
//!   extracts the prefix minimizing the score ([`candidate`]), Phase III
//!   refines candidates with genetic-style set operations and prunes
//!   overlapping results ([`refine`], [`prune`]);
//! * **evaluation** against known ground truth ([`eval`]): the Miss% /
//!   Over% columns of the paper's Table 1.
//!
//! # Quick start
//!
//! ```
//! use gtl_netlist::NetlistBuilder;
//! use gtl_tangled::{FinderConfig, TangledLogicFinder};
//!
//! // Two 4-cliques joined by one wire: each clique is a tiny "GTL".
//! let mut b = NetlistBuilder::new();
//! let cells: Vec<_> = (0..8).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
//! for group in [&cells[..4], &cells[4..]] {
//!     for i in 0..4 {
//!         for j in (i + 1)..4 {
//!             b.add_anonymous_net([group[i], group[j]]);
//!         }
//!     }
//! }
//! b.add_anonymous_net([cells[0], cells[4]]);
//! let netlist = b.finish();
//!
//! let config = FinderConfig {
//!     num_seeds: 4,
//!     max_order_len: 8,
//!     min_size: 2,
//!     ..FinderConfig::default()
//! };
//! let result = TangledLogicFinder::new(&netlist, config).run();
//! assert!(result.gtls.len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_cluster;
pub mod candidate;
pub mod eval;
pub mod kl_connectivity;
pub mod metrics;
pub mod ordering;
pub mod prune;
pub mod refine;

mod finder;

pub use candidate::{Candidate, CandidateConfig, ScoreCurve};
pub use eval::{match_gtls, GtlMatch, MatchReport};
pub use finder::{FinderConfig, FinderResult, Gtl, TangledLogicFinder};
pub use metrics::{DesignContext, MetricKind};
pub use ordering::{GrowthConfig, GrowthCriterion, LinearOrdering, OrderingGrower};
pub use prune::PruneScratch;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: cliques planted in a random sparse background, so
    //! that the cut of a growing group rises with size (Rent-like) instead
    //! of staying constant as it would on a chain or ring.

    use gtl_netlist::{CellId, Netlist, NetlistBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Builds `n` cells with ~2 random 2-pin background nets per cell,
    /// plus all-pairs cliques planted at the given (offset, size) spots.
    /// Returns the netlist and the planted member lists.
    pub fn cliques_in_background(
        n: usize,
        plants: &[(usize, usize)],
        seed: u64,
    ) -> (Netlist, Vec<Vec<CellId>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut planted = vec![false; n];
        for &(off, k) in plants {
            assert!(off + k <= n);
            for flag in &mut planted[off..off + k] {
                *flag = true;
            }
        }
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(n);
        assert_eq!(first.index(), 0);
        // Background wiring between non-planted cells only: planted groups
        // are "more highly connected internally and less connected
        // externally" (paper §3.1).
        for i in 0..n {
            if planted[i] {
                continue;
            }
            for _ in 0..2 {
                let j = rng.gen_range(0..n);
                if j != i && !planted[j] {
                    b.add_anonymous_net([CellId::new(i), CellId::new(j)]);
                }
            }
        }
        let mut truth = Vec::new();
        for &(off, k) in plants {
            let members: Vec<CellId> = (off..off + k).map(CellId::new).collect();
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_anonymous_net([members[i], members[j]]);
                }
            }
            // A few external links so the block is connected to the rest
            // of the graph (non-zero cut). All attach to the last member so
            // tests can pick interior seeds that grow the block cleanly.
            for _ in 0..3 {
                let inside = members[k - 1];
                let outside = loop {
                    let j = rng.gen_range(0..n);
                    if !planted[j] {
                        break CellId::new(j);
                    }
                };
                b.add_anonymous_net([inside, outside]);
            }
            truth.push(members);
        }
        (b.finish(), truth)
    }
}
