//! Phase III (second half): pruning overlapping candidates.
//!
//! After refinement, the `m` parallel searches may have discovered the same
//! structure several times. The paper keeps a disjoint set of winners:
//! candidates are ranked by score and an inferior candidate overlapping an
//! already-kept one is discarded (§3.2.3).
//!
//! Note on the paper's pseudocode: algorithm lines III.16–III.21 sort by
//! non-increasing Φ and keep `P_i` only when nothing *after* it overlaps,
//! which as written would discard a best-scoring candidate because a worse
//! overlapping one exists. The stated intent ("if one has overlap with
//! another and inferior GTL-Score, it is pruned out") is the standard
//! best-first greedy, which is what this module implements.

use gtl_netlist::CellSet;

use crate::candidate::Candidate;

/// Reusable state for [`prune_overlapping_with`]: the bitset of cells
/// covered by already-kept candidates.
///
/// Pruning runs once per finder invocation; a service handling repeated
/// requests over one netlist (`gtl_api::Session`) reuses the allocation
/// across calls instead of paying `O(universe/64)` words each time. The
/// scratch transparently regrows when a larger universe shows up.
#[derive(Debug, Clone)]
pub struct PruneScratch {
    covered: CellSet,
}

impl PruneScratch {
    /// Creates scratch for netlists of up to `universe` cells.
    pub fn new(universe: usize) -> Self {
        Self { covered: CellSet::new(universe) }
    }

    /// Clears the bitset, reallocating only if `universe` grew.
    fn reset(&mut self, universe: usize) {
        if self.covered.universe() < universe {
            self.covered = CellSet::new(universe);
        } else {
            self.covered.clear();
        }
    }
}

/// Selects a best-first disjoint subset of candidates.
///
/// Candidates are sorted by ascending score (lower = more tangled =
/// better) **once**; each is then kept iff it shares no cell with a
/// previously kept one, tracked in a single bitset with the membership
/// probe bailing on the first covered cell. Total cost is
/// `O(m log m + Σ|Cᵢ|)` after the sort — linear in the candidate cells,
/// not quadratic in the candidate count `m`. `universe` is the netlist
/// cell count.
///
/// Equal scores tie-break on the cell vectors themselves, which is only
/// canonical (independent of how each candidate's cells happen to be
/// arranged) when every candidate's `cells` list is **sorted ascending**.
/// Callers must canonicalize before pruning — the finder sorts right
/// after Phase III — and debug builds enforce it.
///
/// # Panics
///
/// In debug builds, panics if any candidate's cell list is not sorted.
///
/// # Example
///
/// ```
/// use gtl_netlist::{CellId, SubsetStats};
/// use gtl_tangled::candidate::Candidate;
/// use gtl_tangled::prune::prune_overlapping;
///
/// let mk = |cells: Vec<usize>, score: f64| Candidate {
///     cells: cells.into_iter().map(CellId::new).collect(),
///     stats: SubsetStats::default(),
///     score,
///     rent_exponent: 0.6,
///     minimum_index: 0,
/// };
/// let kept = prune_overlapping(
///     vec![mk(vec![0, 1, 2], 0.3), mk(vec![2, 3], 0.1), mk(vec![7, 8], 0.5)],
///     10,
/// );
/// // The 0.1 candidate wins its overlap with the 0.3 one.
/// let scores: Vec<f64> = kept.iter().map(|c| c.score).collect();
/// assert_eq!(scores, [0.1, 0.5]);
/// ```
pub fn prune_overlapping(candidates: Vec<Candidate>, universe: usize) -> Vec<Candidate> {
    prune_overlapping_with(candidates, universe, &mut PruneScratch::new(universe))
}

/// [`prune_overlapping`] with caller-owned scratch, for callers that prune
/// repeatedly over the same netlist (see [`PruneScratch`]).
///
/// # Panics
///
/// In debug builds, panics if any candidate's cell list is not sorted.
pub fn prune_overlapping_with(
    mut candidates: Vec<Candidate>,
    universe: usize,
    scratch: &mut PruneScratch,
) -> Vec<Candidate> {
    debug_assert!(
        candidates.iter().all(|c| c.cells.windows(2).all(|w| w[0] <= w[1])),
        "candidate cell lists must be sorted ascending for a canonical tiebreak"
    );
    // Best-first order, established exactly once. The comparator is a
    // total order over (score, cells), so an unstable sort is canonical.
    candidates.sort_unstable_by(|a, b| a.score.total_cmp(&b.score).then(a.cells.cmp(&b.cells)));
    scratch.reset(universe);
    let covered = &mut scratch.covered;
    let mut kept: Vec<Candidate> = Vec::new();
    'outer: for cand in candidates {
        // Probe before committing; the first covered cell disqualifies the
        // candidate, so the common rejected case is O(overlap prefix).
        for &cell in &cand.cells {
            if covered.contains(cell) {
                continue 'outer;
            }
        }
        for &cell in &cand.cells {
            covered.insert(cell);
        }
        kept.push(cand);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellId, SubsetStats};

    fn cand(cells: &[usize], score: f64) -> Candidate {
        Candidate {
            cells: cells.iter().map(|&i| CellId::new(i)).collect(),
            stats: SubsetStats { size: cells.len(), ..SubsetStats::default() },
            score,
            rent_exponent: 0.6,
            minimum_index: 0,
        }
    }

    #[test]
    fn disjoint_candidates_all_kept() {
        let kept =
            prune_overlapping(vec![cand(&[0, 1], 0.5), cand(&[2, 3], 0.2), cand(&[4], 0.9)], 10);
        assert_eq!(kept.len(), 3);
        // Sorted best-first.
        assert!(kept[0].score <= kept[1].score && kept[1].score <= kept[2].score);
    }

    #[test]
    fn overlap_keeps_better_score() {
        let kept = prune_overlapping(vec![cand(&[0, 1, 2], 0.5), cand(&[2, 3, 4], 0.1)], 10);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.1);
    }

    #[test]
    fn chain_of_overlaps() {
        // a(0.1) overlaps b(0.2); b overlaps c(0.3); a and c are disjoint.
        // Best-first: keep a, drop b, keep c.
        let kept =
            prune_overlapping(vec![cand(&[0, 1], 0.1), cand(&[1, 2], 0.2), cand(&[2, 3], 0.3)], 10);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.1);
        assert_eq!(kept[1].score, 0.3);
    }

    #[test]
    fn identical_scores_deterministic() {
        let a = prune_overlapping(vec![cand(&[0, 1], 0.5), cand(&[1, 2], 0.5)], 10);
        let b = prune_overlapping(vec![cand(&[1, 2], 0.5), cand(&[0, 1], 0.5)], 10);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].cells, b[0].cells, "tie-break must not depend on input order");
    }

    #[test]
    fn empty_input() {
        assert!(prune_overlapping(Vec::new(), 5).is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut scratch = PruneScratch::new(10);
        let batch_a = vec![cand(&[0, 1, 2], 0.5), cand(&[2, 3, 4], 0.1)];
        let batch_b = vec![cand(&[0, 1], 0.1), cand(&[1, 2], 0.2), cand(&[2, 3], 0.3)];
        for batch in [batch_a, batch_b] {
            let fresh = prune_overlapping(batch.clone(), 10);
            let reused = prune_overlapping_with(batch, 10, &mut scratch);
            assert_eq!(
                fresh.iter().map(|c| (&c.cells, c.score)).collect::<Vec<_>>(),
                reused.iter().map(|c| (&c.cells, c.score)).collect::<Vec<_>>()
            );
        }
        // A larger universe regrows the scratch transparently.
        let kept = prune_overlapping_with(vec![cand(&[700], 0.2)], 1000, &mut scratch);
        assert_eq!(kept.len(), 1);
    }
}
