//! Phase II: extracting a candidate GTL from a linear ordering.
//!
//! Every prefix of a Phase I ordering is a candidate group; plotting the
//! chosen metric against prefix size gives curves like the paper's
//! Figures 2 and 3. A *clear minimum* of that curve — a score well below
//! the average-group value of 1.0 that rises again afterwards — marks the
//! boundary of a tangled structure, and the minimizing prefix becomes the
//! candidate GTL.
//!
//! The Rent exponent `p` needed by the metrics is estimated from the
//! ordering itself by averaging the per-prefix estimates
//! `(ln T − ln A_C)/ln |C|` (paper §3.2.2).
//!
//! # Example
//!
//! ```
//! use gtl_netlist::NetlistBuilder;
//! use gtl_tangled::{CandidateConfig, GrowthConfig, OrderingGrower};
//! use gtl_tangled::candidate::extract_candidate;
//!
//! // A 6-clique embedded in a scrambled sparse background.
//! let mut b = NetlistBuilder::new();
//! let cells: Vec<_> = (0..60).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
//! for i in 0..6 {
//!     for j in (i + 1)..6 {
//!         b.add_anonymous_net([cells[i], cells[j]]);
//!     }
//! }
//! // Scrambled background wiring between the non-clique cells, plus one
//! // link tying the clique to the rest.
//! for i in 8..60 {
//!     b.add_anonymous_net([cells[i], cells[8 + (i * 7 + 11) % (60 - 8)]]);
//!     b.add_anonymous_net([cells[i], cells[8 + (i * 13 + 29) % (60 - 8)]]);
//! }
//! b.add_anonymous_net([cells[5], cells[30]]);
//! let nl = b.finish();
//!
//! let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
//! let ordering = grower.grow(cells[0]);
//! let config = CandidateConfig { min_size: 3, max_size: 30, ..CandidateConfig::default() };
//! let cand = extract_candidate(&ordering, nl.avg_pins_per_cell(), &config);
//! assert!(cand.is_some());
//! assert_eq!(cand.unwrap().cells.len(), 6); // the clique
//! ```

use gtl_netlist::{CellId, SubsetStats};

use crate::metrics::{self, DesignContext, MetricKind};
use crate::ordering::LinearOrdering;

/// Fallback Rent exponent when an ordering yields no valid estimate
/// (typical standard-cell designs sit near this value).
pub const DEFAULT_RENT_EXPONENT: f64 = 0.6;

/// Parameters for candidate extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CandidateConfig {
    /// Metric whose minimum is sought.
    pub metric: MetricKind,
    /// Smallest group size considered (the paper ignores "tiny clusters
    /// with a handful of cells").
    pub min_size: usize,
    /// The minimum must score below this to count as a GTL (average groups
    /// score ≈ 1.0; strong GTLs ≪ 1).
    pub accept_threshold: f64,
    /// The curve must rise to at least `prominence × minimum` after the
    /// minimum — otherwise the curve is still falling and there is no
    /// *clear* minimum.
    pub prominence: f64,
    /// Largest group size considered; the paper seeks structures, not
    /// "partitions that consume a huge chunk of the circuit". The finder
    /// sets this to half the netlist by default.
    pub max_size: usize,
    /// Fixed Rent exponent; when `None` it is estimated from the ordering.
    pub rent_exponent: Option<f64>,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        Self {
            metric: MetricKind::default(),
            min_size: 30,
            accept_threshold: 0.9,
            prominence: 1.2,
            max_size: usize::MAX,
            rent_exponent: None,
        }
    }
}

/// A candidate GTL: the score-minimizing prefix of one linear ordering.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Candidate {
    /// The member cells (prefix of the ordering, in agglomeration order).
    pub cells: Vec<CellId>,
    /// Connectivity statistics of the group.
    pub stats: SubsetStats,
    /// Score under the configured metric.
    pub score: f64,
    /// Rent exponent used for scoring.
    pub rent_exponent: f64,
    /// Index `k` of the minimum within the ordering (group = first `k+1`).
    pub minimum_index: usize,
}

/// A sampled metric-versus-size curve, as plotted in Figures 2, 3 and 5.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScoreCurve {
    /// Group sizes `|C|` (x axis).
    pub sizes: Vec<usize>,
    /// Metric values (y axis), parallel to `sizes`.
    pub scores: Vec<f64>,
    /// The Rent exponent the scores were computed with.
    pub rent_exponent: f64,
}

impl ScoreCurve {
    /// Index of the smallest score, or `None` if the curve is empty.
    pub fn argmin(&self) -> Option<usize> {
        self.scores.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
    }
}

/// Estimates the Rent exponent of an ordering by averaging the per-prefix
/// estimates (paper §3.2.2), clamped to `(0, 1]`.
///
/// Returns [`DEFAULT_RENT_EXPONENT`] when no prefix yields a valid
/// estimate.
pub fn estimate_ordering_rent_exponent(ordering: &LinearOrdering) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for k in 0..ordering.len() {
        if let Some(p) = metrics::estimate_rent_exponent(&ordering.stats_at(k)) {
            if p.is_finite() && p > 0.0 {
                sum += p.min(1.0);
                n += 1;
            }
        }
    }
    if n == 0 {
        DEFAULT_RENT_EXPONENT
    } else {
        sum / n as f64
    }
}

/// Computes the full metric curve over all prefixes of `ordering`.
///
/// `avg_pins_per_cell` is the design's `A(G)`. The Rent exponent comes from
/// `config.rent_exponent` or is estimated from the ordering.
pub fn score_curve(
    ordering: &LinearOrdering,
    avg_pins_per_cell: f64,
    config: &CandidateConfig,
) -> ScoreCurve {
    let p = config.rent_exponent.unwrap_or_else(|| estimate_ordering_rent_exponent(ordering));
    let ctx = DesignContext { avg_pins_per_cell, rent_exponent: p };
    let mut curve = ScoreCurve {
        sizes: Vec::with_capacity(ordering.len()),
        scores: Vec::with_capacity(ordering.len()),
        rent_exponent: p,
    };
    for k in 0..ordering.len() {
        let stats = ordering.stats_at(k);
        curve.sizes.push(stats.size);
        curve.scores.push(config.metric.score(&stats, &ctx));
    }
    curve
}

/// Extracts the candidate GTL from an ordering, if its score curve has a
/// clear minimum (paper §3.2.2).
///
/// Returns `None` when
/// * the ordering is shorter than `config.min_size`,
/// * the best score is not below `config.accept_threshold`, or
/// * the curve never rises to `prominence × minimum` after the minimum
///   (the flat/decreasing curves of a seed outside any GTL).
pub fn extract_candidate(
    ordering: &LinearOrdering,
    avg_pins_per_cell: f64,
    config: &CandidateConfig,
) -> Option<Candidate> {
    if ordering.len() < config.min_size.max(2) {
        return None;
    }
    let curve = score_curve(ordering, avg_pins_per_cell, config);
    let lo = config.min_size.saturating_sub(1);
    let hi = config.max_size.min(curve.scores.len());
    if lo >= hi {
        return None;
    }

    // Global minimum over eligible prefixes. A prefix with cut 0 is a whole
    // connected component, not a structure boundary — skip it.
    let (k_min, s_min) = curve.scores[lo..hi]
        .iter()
        .enumerate()
        .filter(|(i, _)| ordering.cut_at(i + lo) > 0)
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &s)| (i + lo, s))?;

    if !s_min.is_finite() || s_min >= config.accept_threshold {
        return None;
    }
    // The minimum is "clear" only if the curve rises afterwards: a seed
    // outside any GTL produces a flat or still-decreasing curve.
    let rises = curve.scores[k_min + 1..].iter().any(|&s| s >= config.prominence * s_min);
    if !rises {
        return None;
    }

    Some(Candidate {
        cells: ordering.prefix(k_min),
        stats: ordering.stats_at(k_min),
        score: s_min,
        rent_exponent: curve.rent_exponent,
        minimum_index: k_min,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{GrowthConfig, OrderingGrower};
    use crate::testutil::cliques_in_background;
    use gtl_netlist::{Netlist, NetlistBuilder};

    fn grow(nl: &Netlist, seed: CellId) -> LinearOrdering {
        OrderingGrower::new(nl, GrowthConfig::default()).grow(seed)
    }

    #[test]
    fn finds_clique_as_minimum() {
        let (nl, truth) = cliques_in_background(200, &[(10, 12)], 1);
        let ord = grow(&nl, truth[0][0]);
        let config = CandidateConfig { min_size: 4, ..CandidateConfig::default() };
        let cand = extract_candidate(&ord, nl.avg_pins_per_cell(), &config).expect("candidate");
        assert_eq!(cand.cells.len(), 12, "score {}", cand.score);
        assert!(cand.score < 0.5);
    }

    #[test]
    fn no_candidate_without_structure() {
        // A bare random background has no tangled structure.
        let (nl, _) = cliques_in_background(200, &[], 2);
        let ord = grow(&nl, CellId::new(100));
        let config = CandidateConfig { min_size: 4, ..CandidateConfig::default() };
        let cand = extract_candidate(&ord, nl.avg_pins_per_cell(), &config);
        // Either nothing, or nothing *strong*: a random graph must never
        // look like a GTL (score ≪ 1).
        assert!(cand.is_none_or(|c| c.score > 0.3), "random graph scored as strong GTL");
    }

    #[test]
    fn short_ordering_rejected() {
        let (nl, truth) = cliques_in_background(50, &[(0, 4)], 3);
        let ord = grow(&nl, truth[0][0]);
        let config = CandidateConfig { min_size: 60, ..CandidateConfig::default() };
        assert!(extract_candidate(&ord, nl.avg_pins_per_cell(), &config).is_none());
    }

    #[test]
    fn max_size_cap_respected() {
        let (nl, truth) = cliques_in_background(200, &[(10, 12)], 1);
        let ord = grow(&nl, truth[0][0]);
        let config = CandidateConfig { min_size: 4, max_size: 8, ..CandidateConfig::default() };
        if let Some(c) = extract_candidate(&ord, nl.avg_pins_per_cell(), &config) {
            assert!(c.cells.len() <= 8);
        }
    }

    #[test]
    fn threshold_rejects_weak_minimum() {
        let (nl, truth) = cliques_in_background(200, &[(10, 12)], 1);
        let ord = grow(&nl, truth[0][0]);
        let config = CandidateConfig {
            min_size: 4,
            accept_threshold: 1e-9, // nothing is this tangled
            ..CandidateConfig::default()
        };
        assert!(extract_candidate(&ord, nl.avg_pins_per_cell(), &config).is_none());
    }

    #[test]
    fn fixed_rent_exponent_used() {
        let (nl, truth) = cliques_in_background(200, &[(10, 12)], 1);
        let ord = grow(&nl, truth[0][0]);
        let config = CandidateConfig {
            min_size: 4,
            rent_exponent: Some(0.77),
            ..CandidateConfig::default()
        };
        let cand = extract_candidate(&ord, nl.avg_pins_per_cell(), &config).unwrap();
        assert_eq!(cand.rent_exponent, 0.77);
        let curve = score_curve(&ord, nl.avg_pins_per_cell(), &config);
        assert_eq!(curve.rent_exponent, 0.77);
    }

    #[test]
    fn curve_shape_matches_paper_figure2() {
        // Inside a planted structure the curve dips at the structure size
        // and rises afterwards (paper Figure 2's "inside" curve).
        let (nl, truth) = cliques_in_background(300, &[(50, 14)], 4);
        let ord =
            OrderingGrower::new(&nl, GrowthConfig { max_len: 100, ..GrowthConfig::default() })
                .grow(truth[0][3]);
        let config = CandidateConfig { min_size: 3, ..CandidateConfig::default() };
        let curve = score_curve(&ord, nl.avg_pins_per_cell(), &config);
        let k = curve.argmin().unwrap();
        assert!((12..=16).contains(&curve.sizes[k]), "min at size {}", curve.sizes[k]);
        assert!(curve.scores[k] < *curve.scores.last().unwrap());
    }

    #[test]
    fn rent_estimate_reasonable() {
        let (nl, truth) = cliques_in_background(200, &[(10, 12)], 1);
        let ord = grow(&nl, truth[0][0]);
        let p = estimate_ordering_rent_exponent(&ord);
        assert!(p > 0.0 && p <= 1.0, "p = {p}");
    }

    #[test]
    fn rent_estimate_fallback_when_undefined() {
        // Two isolated cells joined by one net: every prefix has cut 0 or
        // size 1, so no valid estimate exists.
        let mut b = NetlistBuilder::new();
        let x = b.add_cell("x", 1.0);
        let y = b.add_cell("y", 1.0);
        b.add_anonymous_net([x, y]);
        let nl = b.finish();
        let ord = grow(&nl, x);
        assert_eq!(estimate_ordering_rent_exponent(&ord), DEFAULT_RENT_EXPONENT);
    }

    #[test]
    fn empty_curve_argmin() {
        assert!(ScoreCurve::default().argmin().is_none());
    }
}
