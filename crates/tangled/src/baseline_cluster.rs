//! Conventional bottom-up clustering, for contrast with GTL detection.
//!
//! The paper's Chapter II distinguishes GTL detection from classical
//! clustering on two axes: conventional clusters are *small* (2–10 cells,
//! a problem-size reduction device) and *exhaustive* (every cell belongs
//! to a cluster). This module implements a FirstChoice-style edge-
//! coarsening clusterer with exactly those properties, so examples and
//! benches can show side by side why it cannot answer the paper's
//! question: it happily chops a 32K-cell dissolved ROM into thousands of
//! 4-cell clusters, none of which reveals the structure.

use gtl_netlist::{CellId, Netlist};

/// Parameters of the FirstChoice clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Maximum cells per cluster (conventional clustering: 2–10).
    pub max_cluster_size: usize,
    /// Nets larger than this are ignored when scoring affinity (standard
    /// coarsening practice; fanout nets carry no locality signal).
    pub max_net_degree: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self { max_cluster_size: 4, max_net_degree: 16 }
    }
}

/// An exhaustive clustering: every cell belongs to exactly one cluster.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index of each cell.
    labels: Vec<u32>,
    /// Member lists, indexed by cluster.
    clusters: Vec<Vec<CellId>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster index of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of bounds.
    pub fn cluster_of(&self, cell: CellId) -> usize {
        self.labels[cell.index()] as usize
    }

    /// Members of cluster `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn members(&self, index: usize) -> &[CellId] {
        &self.clusters[index]
    }

    /// Iterator over all clusters.
    pub fn iter(&self) -> impl Iterator<Item = &[CellId]> {
        self.clusters.iter().map(Vec::as_slice)
    }

    /// Average cluster size.
    pub fn mean_size(&self) -> f64 {
        if self.clusters.is_empty() {
            0.0
        } else {
            self.labels.len() as f64 / self.clusters.len() as f64
        }
    }
}

/// Clusters `netlist` bottom-up: cells are visited in id order; an
/// unmatched cell joins the neighboring cluster with the highest total
/// edge affinity (`1/(|e|−1)` per shared net) that still has room.
///
/// Every cell is assigned (conventional clustering covers the netlist);
/// cells with no eligible neighbor become singletons.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_tangled::baseline_cluster::{cluster, ClusterConfig};
///
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..8).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// for w in cells.windows(2) {
///     b.add_anonymous_net([w[0], w[1]]);
/// }
/// let nl = b.finish();
/// let clustering = cluster(&nl, &ClusterConfig::default());
/// assert_eq!(clustering.num_clusters(), 2); // 8 cells into 4-cell clusters
/// ```
pub fn cluster(netlist: &Netlist, config: &ClusterConfig) -> Clustering {
    let n = netlist.num_cells();
    const UNASSIGNED: u32 = u32::MAX;
    let mut labels = vec![UNASSIGNED; n];
    let mut cluster_size: Vec<usize> = Vec::new();
    // Scratch affinity accumulator keyed by cluster id.
    let mut affinity: Vec<f64> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();

    for cell in netlist.cells() {
        if labels[cell.index()] != UNASSIGNED {
            continue;
        }
        // Score neighboring clusters.
        for &net in netlist.cell_nets(cell) {
            let deg = netlist.net_degree(net);
            if deg < 2 || deg > config.max_net_degree {
                continue;
            }
            let w = 1.0 / (deg - 1) as f64;
            for &u in netlist.net_cells(net) {
                let lu = labels[u.index()];
                if u == cell || lu == UNASSIGNED {
                    continue;
                }
                if cluster_size[lu as usize] >= config.max_cluster_size {
                    continue;
                }
                if affinity.len() <= lu as usize {
                    affinity.resize(lu as usize + 1, 0.0);
                }
                if affinity[lu as usize] == 0.0 {
                    touched.push(lu);
                }
                affinity[lu as usize] += w;
            }
        }
        // Pick the best cluster (ties: lower cluster id for determinism).
        let mut best: Option<(f64, u32)> = None;
        for &c in &touched {
            let a = affinity[c as usize];
            let better = match best {
                None => true,
                Some((ba, bc)) => a > ba || (a == ba && c < bc),
            };
            if better {
                best = Some((a, c));
            }
        }
        for c in touched.drain(..) {
            affinity[c as usize] = 0.0;
        }
        match best {
            Some((_, c)) => {
                labels[cell.index()] = c;
                cluster_size[c as usize] += 1;
            }
            None => {
                labels[cell.index()] = cluster_size.len() as u32;
                cluster_size.push(1);
            }
        }
    }

    let mut clusters: Vec<Vec<CellId>> = vec![Vec::new(); cluster_size.len()];
    for cell in netlist.cells() {
        clusters[labels[cell.index()] as usize].push(cell);
    }
    Clustering { labels, clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::NetlistBuilder;

    #[test]
    fn covers_every_cell_exactly_once() {
        let (nl, _) = crate::testutil::cliques_in_background(300, &[(50, 20)], 3);
        let clustering = cluster(&nl, &ClusterConfig::default());
        let mut seen = vec![false; nl.num_cells()];
        for members in clustering.iter() {
            for &c in members {
                assert!(!seen[c.index()], "cell {c} in two clusters");
                seen[c.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "uncovered cells");
    }

    #[test]
    fn respects_max_cluster_size() {
        let (nl, _) = crate::testutil::cliques_in_background(300, &[(50, 20)], 3);
        let config = ClusterConfig { max_cluster_size: 3, ..ClusterConfig::default() };
        let clustering = cluster(&nl, &config);
        for members in clustering.iter() {
            assert!(members.len() <= 3);
        }
        assert!(clustering.mean_size() <= 3.0);
    }

    #[test]
    fn chain_pairs_up() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..6).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for w in cells.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        let nl = b.finish();
        let clustering = cluster(&nl, &ClusterConfig { max_cluster_size: 2, max_net_degree: 16 });
        assert_eq!(clustering.num_clusters(), 3);
        assert_eq!(clustering.cluster_of(cells[0]), clustering.cluster_of(cells[1]));
    }

    #[test]
    fn isolated_cells_become_singletons() {
        let mut b = NetlistBuilder::new();
        b.add_anonymous_cells(4);
        let nl = b.finish();
        let clustering = cluster(&nl, &ClusterConfig::default());
        assert_eq!(clustering.num_clusters(), 4);
    }

    #[test]
    fn big_fanout_nets_ignored() {
        // A 20-pin net (above max_net_degree 16) must not merge anything.
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(20);
        b.add_anonymous_net((0..20).map(gtl_netlist::CellId::new));
        let nl = b.finish();
        let clustering = cluster(&nl, &ClusterConfig::default());
        assert_eq!(clustering.num_clusters(), 20);
        let _ = first;
    }

    #[test]
    fn clustering_cannot_reveal_a_gtl() {
        // The Chapter II point: conventional clustering chops a planted
        // structure into many tiny clusters — no single cluster comes
        // close to covering it.
        let (nl, truth) = crate::testutil::cliques_in_background(400, &[(100, 40)], 5);
        let clustering = cluster(&nl, &ClusterConfig::default());
        let gtl: std::collections::HashSet<_> = truth[0].iter().copied().collect();
        let best_coverage = clustering
            .iter()
            .map(|members| members.iter().filter(|c| gtl.contains(c)).count())
            .max()
            .unwrap();
        assert!(
            best_coverage <= ClusterConfig::default().max_cluster_size,
            "a tiny cluster covered {best_coverage} GTL cells"
        );
    }
}
