//! ISPD 2005/2006-shaped synthetic circuits (Table 2, Figures 4–5).
//!
//! The paper's Table 2 runs on Bigblue1–3 and Adaptec1–3. Those benchmark
//! files are large IBM-distributed archives we do not ship; instead this
//! module generates circuits with the same cell counts (scaled on demand),
//! a Rent-rule background built by recursive bipartition wiring, a matched
//! net-degree profile, and embedded logic structures from
//! [`crate::structures`] for the finder to discover. Real
//! Bookshelf files can always be substituted via
//! [`gtl_netlist::bookshelf::read_aux`].

use gtl_netlist::{CellId, NetlistBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::structures;
use crate::GeneratedCircuit;

/// The six ISPD placement benchmarks evaluated in the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IspdBenchmark {
    /// Bigblue1: 278,164 cells.
    Bigblue1,
    /// Bigblue2: 557,786 cells.
    Bigblue2,
    /// Bigblue3: 1,096,812 cells.
    Bigblue3,
    /// Adaptec1: 211,447 cells.
    Adaptec1,
    /// Adaptec2: 255,023 cells.
    Adaptec2,
    /// Adaptec3: 451,650 cells.
    Adaptec3,
}

impl IspdBenchmark {
    /// All six benchmarks, in the paper's Table 2 order.
    pub const ALL: [IspdBenchmark; 6] = [
        Self::Bigblue1,
        Self::Bigblue2,
        Self::Bigblue3,
        Self::Adaptec1,
        Self::Adaptec2,
        Self::Adaptec3,
    ];

    /// The benchmark's display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Bigblue1 => "bigblue1",
            Self::Bigblue2 => "bigblue2",
            Self::Bigblue3 => "bigblue3",
            Self::Adaptec1 => "adaptec1",
            Self::Adaptec2 => "adaptec2",
            Self::Adaptec3 => "adaptec3",
        }
    }

    /// `|V|` as reported in the paper's Table 2.
    pub fn paper_num_cells(self) -> usize {
        match self {
            Self::Bigblue1 => 278_164,
            Self::Bigblue2 => 557_786,
            Self::Bigblue3 => 1_096_812,
            Self::Adaptec1 => 211_447,
            Self::Adaptec2 => 255_023,
            Self::Adaptec3 => 451_650,
        }
    }

    /// Number of GTLs the paper found with 100 seeds (Table 2 column 4).
    pub fn paper_gtls_found(self) -> usize {
        match self {
            Self::Bigblue1 => 72,
            Self::Bigblue2 => 93,
            Self::Bigblue3 => 112,
            Self::Adaptec1 => 78,
            Self::Adaptec2 => 54,
            Self::Adaptec3 => 109,
        }
    }
}

impl std::fmt::Display for IspdBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for the ISPD-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspdLikeConfig {
    /// Which benchmark's shape to imitate.
    pub benchmark: IspdBenchmark,
    /// Cell-count scale in `(0, 1]` (1.0 = paper size).
    pub scale: f64,
    /// How many logic structures to embed; `None` scales the paper's GTL
    /// count for this benchmark.
    pub num_structures: Option<usize>,
    /// Target Rent exponent of the background wiring.
    pub rent_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl IspdLikeConfig {
    /// A config for `benchmark` at `scale` with defaults elsewhere.
    pub fn new(benchmark: IspdBenchmark, scale: f64) -> Self {
        Self { benchmark, scale, num_structures: None, rent_exponent: 0.65, seed: 0x15bd }
    }
}

/// Generates an ISPD-like circuit with embedded tangled structures.
///
/// Structures occupy the low cell ids (their membership is returned as
/// ground truth); the rest of the netlist is Rent-rule background built by
/// recursive bipartition wiring. Each structure is tied to the background
/// with `~size^0.5` boundary nets, giving Table 2-like cut magnitudes.
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
///
/// # Example
///
/// ```
/// use gtl_synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};
///
/// let g = generate(&IspdLikeConfig::new(IspdBenchmark::Bigblue1, 0.01));
/// assert!(g.netlist.num_cells() >= 2_700);
/// assert!(!g.truth.is_empty());
/// # g.netlist.validate().unwrap();
/// ```
pub fn generate(config: &IspdLikeConfig) -> GeneratedCircuit {
    assert!(config.scale > 0.0 && config.scale <= 1.0, "scale must be in (0, 1]");
    // gtl-lint: allow(no-rng-outside-derive-stream, reason = "generator master stream; generation is single-threaded and sequential")
    let mut rng = SmallRng::seed_from_u64(config.seed ^ config.benchmark.paper_num_cells() as u64);
    let target_cells =
        ((config.benchmark.paper_num_cells() as f64 * config.scale) as usize).max(512);

    let mut b = NetlistBuilder::with_capacity(target_cells, target_cells * 2);

    // --- Embedded structures (ground truth) ----------------------------
    let requested = config.num_structures.unwrap_or_else(|| {
        ((config.benchmark.paper_gtls_found() as f64 * config.scale.sqrt()) as usize).max(3)
    });
    let budget = target_cells / 2; // at most half the design is structures
    let mut truth: Vec<Vec<CellId>> = Vec::new();
    let mut used = 0usize;
    for i in 0..requested {
        if used >= budget {
            break;
        }
        let s = match i % 4 {
            0 => structures::decoder(&mut b, rng.gen_range(5..=8)),
            1 => structures::mux_tree(&mut b, rng.gen_range(6..=9)),
            2 => structures::multiplier_array(&mut b, rng.gen_range(6..=12)),
            _ => structures::ripple_carry_adder(&mut b, rng.gen_range(32..=128)),
        };
        used += s.len();
        truth.push(s.cells);
    }

    // --- Background ----------------------------------------------------
    let bg_count = target_cells.saturating_sub(b.num_cells());
    let bg_first = b.add_anonymous_cells(bg_count);
    let bg: Vec<CellId> =
        (bg_first.index()..bg_first.index() + bg_count).map(CellId::new).collect();
    rent_wire(&mut b, &bg, config.rent_exponent, &mut rng);

    // --- Structure boundary nets ---------------------------------------
    if !bg.is_empty() {
        for members in &truth {
            let links = ((members.len() as f64).sqrt() as usize).max(4);
            for _ in 0..links {
                let inside = members[rng.gen_range(0..members.len())];
                let deg = crate::sample_net_degree(&mut rng, 6);
                let mut pins = vec![inside];
                for _ in 1..deg {
                    pins.push(bg[rng.gen_range(0..bg.len())]);
                }
                b.add_anonymous_net(pins);
            }
        }
    }

    GeneratedCircuit {
        name: format!("{}-like-x{:.3}", config.benchmark.name(), config.scale),
        netlist: b.finish(),
        truth,
    }
}

/// Wires `cells` as a Rent-rule background by recursive bipartition: a
/// region of `m` cells gets `~0.75·m^p` nets crossing its midline, giving
/// `T(region) ∝ region^p` for aligned regions.
pub(crate) fn rent_wire(
    b: &mut NetlistBuilder,
    cells: &[CellId],
    rent_exponent: f64,
    rng: &mut SmallRng,
) {
    if cells.len() < 2 {
        return;
    }
    if cells.len() <= 8 {
        // Leaf: a couple of local nets keep the region connected.
        for w in cells.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        return;
    }
    let mid = cells.len() / 2;
    let (left, right) = cells.split_at(mid);
    rent_wire(b, left, rent_exponent, rng);
    rent_wire(b, right, rent_exponent, rng);
    let cross = (0.75 * (cells.len() as f64).powf(rent_exponent)).ceil() as usize;
    for _ in 0..cross {
        let deg = crate::sample_net_degree(rng, 8);
        let mut pins = Vec::with_capacity(deg);
        // At least one pin per side so the net truly crosses the midline.
        pins.push(left[rng.gen_range(0..left.len())]);
        pins.push(right[rng.gen_range(0..right.len())]);
        for _ in 2..deg {
            pins.push(cells[rng.gen_range(0..cells.len())]);
        }
        b.add_anonymous_net(pins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellSet, SubsetStats};

    #[test]
    fn names_and_sizes() {
        assert_eq!(IspdBenchmark::Bigblue1.name(), "bigblue1");
        assert_eq!(IspdBenchmark::Bigblue3.paper_num_cells(), 1_096_812);
        assert_eq!(IspdBenchmark::ALL.len(), 6);
        assert_eq!(IspdBenchmark::Adaptec2.to_string(), "adaptec2");
    }

    #[test]
    fn generates_scaled_instance() {
        let g = generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec1, 0.02));
        let target = (211_447.0 * 0.02) as usize;
        assert!(g.netlist.num_cells() >= target, "{} < {target}", g.netlist.num_cells());
        g.netlist.validate().unwrap();
        // Pin density in a plausible standard-cell range.
        let a_g = g.netlist.avg_pins_per_cell();
        assert!((2.0..8.0).contains(&a_g), "A(G) = {a_g}");
    }

    #[test]
    fn structures_are_tangled() {
        let g = generate(&IspdLikeConfig::new(IspdBenchmark::Bigblue1, 0.01));
        // Most embedded structures must have pin density above background
        // and modest cut relative to their size.
        let mut tangled = 0usize;
        for members in &g.truth {
            let set = CellSet::from_cells(g.netlist.num_cells(), members.iter().copied());
            let stats = SubsetStats::compute(&g.netlist, &set);
            if stats.cut < stats.size && stats.avg_pins_per_cell() > 2.0 {
                tangled += 1;
            }
        }
        assert!(tangled * 2 >= g.truth.len(), "{tangled} of {}", g.truth.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = IspdLikeConfig::new(IspdBenchmark::Adaptec3, 0.005);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.netlist.num_pins(), b.netlist.num_pins());
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn num_structures_override() {
        let mut cfg = IspdLikeConfig::new(IspdBenchmark::Bigblue2, 0.005);
        cfg.num_structures = Some(2);
        let g = generate(&cfg);
        assert_eq!(g.truth.len(), 2);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        generate(&IspdLikeConfig::new(IspdBenchmark::Bigblue1, 0.0));
    }

    #[test]
    fn rent_background_has_rent_like_cut_growth() {
        // Aligned prefixes of the background should have polynomially
        // growing cut. Note: regions near the top of a finite hierarchy
        // see a flattened slope (ancestor levels contribute relatively
        // more to small regions), so the band is wide; the essential
        // property for the GTL metrics is sub-linear *growth*, unlike a
        // chain's constant cut.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut b = NetlistBuilder::new();
        let first = b.add_anonymous_cells(4096);
        let cells: Vec<CellId> = (0..4096).map(CellId::new).collect();
        rent_wire(&mut b, &cells, 0.65, &mut rng);
        let nl = b.finish();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for logm in 5..=11 {
            let m = 1usize << logm;
            let set = CellSet::from_cells(nl.num_cells(), (0..m).map(CellId::new));
            let stats = SubsetStats::compute(&nl, &set);
            xs.push((m as f64).ln());
            ys.push((stats.cut as f64).ln());
        }
        let n = xs.len() as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!((0.15..0.95).contains(&slope), "Rent slope {slope}");
        // Cut must actually grow several-fold across the range.
        assert!(ys.last().unwrap() - ys[0] > 1.0, "cut barely grows: {ys:?}");
        let _ = first;
    }
}
