//! Random graphs with planted GTLs, after Garbers–Prömel–Steger.
//!
//! The paper validates its metrics and finder on random graphs whose
//! tangled structures are known a priori (Table 1): a sparse background of
//! ordinary cells, plus planted blocks that are "more highly connected
//! internally and less connected externally than the rest of the graph".
//!
//! Block members get several short internal nets each (high pin density —
//! which is also what makes the density-aware `GTL-SD` score shine), and
//! each block talks to the background through only a handful of boundary
//! nets, matching the tiny cuts the paper reports (cut 28–36 for blocks of
//! 11K–32K cells on the industrial design).

use gtl_netlist::{CellId, NetlistBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::GeneratedCircuit;

/// Parameters of the planted-GTL random graph generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedConfig {
    /// Total number of cells, `|V|` (background + planted).
    pub num_cells: usize,
    /// Sizes of the planted blocks; they occupy disjoint id ranges at the
    /// front of the cell space.
    pub blocks: Vec<usize>,
    /// Background nets created per background cell (average).
    pub background_nets_per_cell: f64,
    /// Internal nets created per planted cell (average); higher than the
    /// background so blocks are tangled.
    pub internal_nets_per_cell: f64,
    /// Boundary nets per block connecting it to the background.
    pub external_links_per_block: usize,
    /// Largest net degree the generator will produce.
    pub max_net_degree: usize,
    /// RNG seed; same seed ⇒ identical graph.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            num_cells: 10_000,
            blocks: vec![500],
            background_nets_per_cell: 1.6,
            internal_nets_per_cell: 2.5,
            external_links_per_block: 8,
            max_net_degree: 12,
            seed: 0xDAC_2010,
        }
    }
}

/// Generates a random graph with planted GTLs.
///
/// Planted blocks occupy cell ids `[0, b0)`, `[b0, b0+b1)`, …; the rest is
/// background. Every planted block is internally connected (a spanning
/// chain is always added), as is typical of synthesized logic structures.
///
/// # Panics
///
/// Panics if the blocks together exceed `num_cells`, or any block is
/// smaller than 2 cells.
///
/// # Example
///
/// ```
/// use gtl_synth::planted::{generate, PlantedConfig};
///
/// let g = generate(&PlantedConfig {
///     num_cells: 1_000,
///     blocks: vec![100, 50],
///     seed: 3,
///     ..PlantedConfig::default()
/// });
/// assert_eq!(g.truth.len(), 2);
/// assert_eq!(g.truth[1].len(), 50);
/// g.netlist.validate().unwrap();
/// ```
pub fn generate(config: &PlantedConfig) -> GeneratedCircuit {
    let planted_total: usize = config.blocks.iter().sum();
    assert!(
        planted_total <= config.num_cells,
        "blocks ({planted_total}) exceed num_cells ({})",
        config.num_cells
    );
    assert!(config.blocks.iter().all(|&b| b >= 2), "blocks must have at least 2 cells");

    // gtl-lint: allow(no-rng-outside-derive-stream, reason = "generator master stream; generation is single-threaded and sequential")
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::with_capacity(config.num_cells, config.num_cells * 2);
    b.add_anonymous_cells(config.num_cells);

    let n = config.num_cells;
    let bg_lo = planted_total; // background occupies [planted_total, n)
    let num_bg = n - bg_lo;

    // --- Background ---------------------------------------------------
    if num_bg >= 2 {
        let bg_nets = (num_bg as f64 * config.background_nets_per_cell) as usize;
        for _ in 0..bg_nets {
            let deg = crate::sample_net_degree(&mut rng, config.max_net_degree).min(num_bg);
            let mut pins = Vec::with_capacity(deg);
            for _ in 0..deg {
                pins.push(CellId::new(bg_lo + rng.gen_range(0..num_bg)));
            }
            b.add_anonymous_net(pins);
        }
        // Spanning chain so the background is one connected component.
        for i in bg_lo..n - 1 {
            if rng.gen_bool(0.35) {
                b.add_anonymous_net([CellId::new(i), CellId::new(i + 1)]);
            }
        }
    }

    // --- Planted blocks -------------------------------------------------
    let mut truth = Vec::with_capacity(config.blocks.len());
    let mut offset = 0usize;
    for &size in &config.blocks {
        let members: Vec<CellId> = (offset..offset + size).map(CellId::new).collect();

        // Dense short internal nets (2–4 pins: tangled structures are made
        // of tightly wired small nets, not big fanout nets).
        let internal = (size as f64 * config.internal_nets_per_cell) as usize;
        for _ in 0..internal {
            let deg = (2 + rng.gen_range(0..3usize)).min(size);
            let mut pins = Vec::with_capacity(deg);
            for _ in 0..deg {
                pins.push(members[rng.gen_range(0..size)]);
            }
            b.add_anonymous_net(pins);
        }
        // Spanning chain: the structure is one connected piece of logic.
        for w in members.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        // A handful of boundary nets to the background.
        if num_bg > 0 {
            for _ in 0..config.external_links_per_block {
                let inside = members[rng.gen_range(0..size)];
                let outside = CellId::new(bg_lo + rng.gen_range(0..num_bg));
                b.add_anonymous_net([inside, outside]);
            }
        }

        truth.push(members);
        offset += size;
    }

    GeneratedCircuit {
        name: format!(
            "planted-{}c-{}",
            config.num_cells,
            config.blocks.iter().map(|b| b.to_string()).collect::<Vec<_>>().join("+")
        ),
        netlist: b.finish(),
        truth,
    }
}

/// The four random-graph cases of the paper's Table 1, scaled by `scale`
/// (1.0 = paper sizes: 10K/100K/100K/800K cells).
///
/// | case | `\|V\|`  | planted GTLs    |
/// |------|------|-----------------|
/// | 1    | 10K  | 500 × 1         |
/// | 2    | 100K | 2K × 1 + 15K × 1|
/// | 3    | 100K | 5K × 1          |
/// | 4    | 800K | 40K × 6         |
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn table1_cases(scale: f64) -> Vec<PlantedConfig> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let s = |v: usize| ((v as f64 * scale) as usize).max(16);
    vec![
        PlantedConfig {
            num_cells: s(10_000),
            blocks: vec![s(500)],
            seed: 1,
            ..PlantedConfig::default()
        },
        PlantedConfig {
            num_cells: s(100_000),
            blocks: vec![s(2_000), s(15_000)],
            seed: 2,
            ..PlantedConfig::default()
        },
        PlantedConfig {
            num_cells: s(100_000),
            blocks: vec![s(5_000)],
            seed: 3,
            ..PlantedConfig::default()
        },
        PlantedConfig {
            num_cells: s(800_000),
            blocks: vec![s(40_000); 6],
            seed: 4,
            ..PlantedConfig::default()
        },
    ]
}

/// The 250K-cell / one 40K-GTL instance used for the paper's Figures 2–3,
/// scaled by `scale`.
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn figure2_case(scale: f64) -> PlantedConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let s = |v: usize| ((v as f64 * scale) as usize).max(16);
    PlantedConfig {
        num_cells: s(250_000),
        blocks: vec![s(40_000)],
        seed: 23,
        ..PlantedConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellSet, SubsetStats};

    #[test]
    fn counts_and_validity() {
        let g = generate(&PlantedConfig {
            num_cells: 3_000,
            blocks: vec![200, 100],
            seed: 5,
            ..PlantedConfig::default()
        });
        assert_eq!(g.netlist.num_cells(), 3_000);
        assert_eq!(g.planted_cells(), 300);
        g.netlist.validate().unwrap();
    }

    #[test]
    fn blocks_are_disjoint_ranges() {
        let g = generate(&PlantedConfig {
            num_cells: 1_000,
            blocks: vec![60, 40],
            seed: 6,
            ..PlantedConfig::default()
        });
        let a: CellSet = g.truth[0].iter().copied().collect();
        assert!(g.truth[1].iter().all(|c| c.index() >= 60));
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn planted_block_has_low_cut_and_high_density() {
        let g = generate(&PlantedConfig {
            num_cells: 5_000,
            blocks: vec![400],
            seed: 7,
            ..PlantedConfig::default()
        });
        let set = CellSet::from_cells(g.netlist.num_cells(), g.truth[0].iter().copied());
        let stats = SubsetStats::compute(&g.netlist, &set);
        // Cut is just the external links; internal pin density beats A(G).
        assert!(stats.cut <= 2 * 8, "cut {}", stats.cut);
        assert!(stats.avg_pins_per_cell() > g.netlist.avg_pins_per_cell());
    }

    #[test]
    fn block_is_connected() {
        let g = generate(&PlantedConfig {
            num_cells: 500,
            blocks: vec![50],
            seed: 8,
            ..PlantedConfig::default()
        });
        // BFS within the block only.
        let set = CellSet::from_cells(g.netlist.num_cells(), g.truth[0].iter().copied());
        let mut seen = CellSet::new(g.netlist.num_cells());
        let mut stack = vec![g.truth[0][0]];
        seen.insert(g.truth[0][0]);
        while let Some(u) = stack.pop() {
            for &net in g.netlist.cell_nets(u) {
                for &v in g.netlist.net_cells(net) {
                    if set.contains(v) && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
        }
        assert_eq!(seen.intersection_len(&set), 50);
    }

    #[test]
    fn deterministic() {
        let cfg = PlantedConfig { num_cells: 800, blocks: vec![80], seed: 9, ..Default::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.netlist.num_nets(), b.netlist.num_nets());
        assert_eq!(a.netlist.num_pins(), b.netlist.num_pins());
    }

    #[test]
    fn table1_cases_match_paper_shape() {
        let cases = table1_cases(1.0);
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].num_cells, 10_000);
        assert_eq!(cases[0].blocks, vec![500]);
        assert_eq!(cases[1].blocks, vec![2_000, 15_000]);
        assert_eq!(cases[3].num_cells, 800_000);
        assert_eq!(cases[3].blocks.len(), 6);
        let scaled = table1_cases(0.01);
        assert_eq!(scaled[0].num_cells, 100);
    }

    #[test]
    fn figure2_case_shape() {
        let c = figure2_case(1.0);
        assert_eq!(c.num_cells, 250_000);
        assert_eq!(c.blocks, vec![40_000]);
    }

    #[test]
    #[should_panic(expected = "exceed num_cells")]
    fn oversized_blocks_panic() {
        generate(&PlantedConfig {
            num_cells: 100,
            blocks: vec![80, 40],
            ..PlantedConfig::default()
        });
    }

    #[test]
    fn no_background_all_planted() {
        let g = generate(&PlantedConfig {
            num_cells: 100,
            blocks: vec![100],
            seed: 10,
            ..PlantedConfig::default()
        });
        g.netlist.validate().unwrap();
        assert_eq!(g.planted_cells(), 100);
    }

    #[test]
    fn finder_recovers_planted_block() {
        // End-to-end sanity: the tangled finder recovers the planted GTL.
        let g = generate(&PlantedConfig {
            num_cells: 2_000,
            blocks: vec![150],
            seed: 11,
            ..PlantedConfig::default()
        });
        let config = gtl_tangled::FinderConfig {
            num_seeds: 20,
            min_size: 20,
            max_order_len: 600,
            rng_seed: 1,
            ..gtl_tangled::FinderConfig::default()
        };
        let result = gtl_tangled::TangledLogicFinder::new(&g.netlist, config).run();
        let found: Vec<Vec<_>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
        let report = gtl_tangled::match_gtls(&g.truth, &found, g.netlist.num_cells());
        assert!(report.all_found(), "missed: {:?}", report.missed_truths);
        assert!(report.max_miss_pct() < 5.0, "miss {}", report.max_miss_pct());
        assert!(report.max_over_pct() < 10.0, "over {}", report.max_over_pct());
    }
}
