//! GTL re-synthesis: trade area for interconnect (paper intro, bullet 3).
//!
//! > *"Prior to placement, a GTL could be resynthesized or re-instantiated
//! > to utilize more area, but less interconnect, thereby reducing
//! > potential hotspots."*
//!
//! This module simulates that synthesis move on the netlist: every net
//! fully internal to the GTL whose fanout exceeds a threshold is replaced
//! by a balanced buffer tree of 2-to-`max_fanout`-pin nets through newly
//! inserted buffer cells. The result has more cells and area but lower
//! pin density and shorter nets — measurably less tangled under `GTL-SD`
//! and measurably cheaper for the congestion estimator.

use gtl_netlist::{CellId, CellSet, NetId, Netlist, NetlistBuilder};

/// Parameters of the re-synthesis transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResynthConfig {
    /// Internal nets with more pins than this get decomposed.
    pub max_fanout: usize,
}

impl Default for ResynthConfig {
    fn default() -> Self {
        Self { max_fanout: 3 }
    }
}

/// What the transform did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResynthReport {
    /// Buffer cells inserted.
    pub buffers_added: usize,
    /// Internal nets decomposed.
    pub nets_decomposed: usize,
    /// Pins before the transform (whole design).
    pub pins_before: usize,
    /// Pins after the transform (whole design).
    pub pins_after: usize,
}

/// Rebuilds `netlist` with the GTL's high-fanout internal nets decomposed
/// into buffer trees. Returns the new netlist and a report; cell ids
/// `0..netlist.num_cells()` keep their meaning, buffers are appended.
///
/// # Panics
///
/// Panics if `config.max_fanout < 2` or a GTL cell id is out of bounds.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::resynth::{resynthesize, ResynthConfig};
///
/// // One 6-pin net inside a "GTL" of 6 cells.
/// let mut b = NetlistBuilder::new();
/// let cells: Vec<_> = (0..6).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
/// b.add_anonymous_net(cells.iter().copied());
/// let nl = b.finish();
///
/// let (out, report) = resynthesize(&nl, &cells, &ResynthConfig { max_fanout: 3 });
/// assert_eq!(report.nets_decomposed, 1);
/// assert!(report.buffers_added > 0);
/// assert!(out.num_cells() > nl.num_cells()); // area for interconnect
/// # out.validate().unwrap();
/// ```
pub fn resynthesize(
    netlist: &Netlist,
    gtl_cells: &[CellId],
    config: &ResynthConfig,
) -> (Netlist, ResynthReport) {
    assert!(config.max_fanout >= 2, "max_fanout must be at least 2");
    let members = CellSet::from_cells(netlist.num_cells(), gtl_cells.iter().copied());

    let mut b = NetlistBuilder::with_capacity(netlist.num_cells(), netlist.num_nets());
    for cell in netlist.cells() {
        let name = netlist.cell_name(cell);
        if name.is_empty() {
            b.add_anonymous_cell(netlist.cell_area(cell));
        } else {
            b.add_cell(name, netlist.cell_area(cell));
        }
    }

    let mut report = ResynthReport { pins_before: netlist.num_pins(), ..Default::default() };
    for net in netlist.nets() {
        let pins = netlist.net_cells(net);
        let internal = !pins.is_empty() && pins.iter().all(|&c| members.contains(c));
        if internal && pins.len() > config.max_fanout {
            decompose(&mut b, netlist, net, config.max_fanout, &mut report);
        } else {
            b.add_net(netlist.net_name(net), pins.iter().copied());
        }
    }
    let out = b.finish();
    report.pins_after = out.num_pins();
    (out, report)
}

/// Replaces `net` with a balanced buffer tree: the original pins are
/// grouped `max_fanout − 1` at a time under new buffer cells, which are
/// themselves grouped recursively until one root net remains.
fn decompose(
    b: &mut NetlistBuilder,
    netlist: &Netlist,
    net: NetId,
    max_fanout: usize,
    report: &mut ResynthReport,
) {
    report.nets_decomposed += 1;
    let mut level: Vec<CellId> = netlist.net_cells(net).to_vec();
    let mut stage = 0usize;
    while level.len() > max_fanout {
        let mut next = Vec::with_capacity(level.len().div_ceil(max_fanout - 1));
        for (i, chunk) in level.chunks(max_fanout - 1).enumerate() {
            let buf = b.add_cell(
                format!("rsyn_{}_{stage}_{i}", net.index()),
                0.75, // BUF-sized
            );
            report.buffers_added += 1;
            let mut pins = vec![buf];
            pins.extend_from_slice(chunk);
            b.add_net(format!("rsyn_n_{}_{stage}_{i}", net.index()), pins);
            next.push(buf);
        }
        level = next;
        stage += 1;
    }
    b.add_net(format!("rsyn_root_{}", net.index()), level);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::SubsetStats;

    /// A dense blob: 30 cells with ten 6-pin internal nets and a chain.
    fn blob() -> (Netlist, Vec<CellId>) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..40).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for k in 0..10 {
            let pins: Vec<CellId> = (0..6).map(|j| cells[(k * 3 + j * 5) % 30]).collect();
            b.add_anonymous_net(pins);
        }
        for w in cells[..30].windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        // Boundary: blob cell 0 to outside cells 30..40 chain.
        b.add_anonymous_net([cells[0], cells[30]]);
        for w in cells[30..].windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        (b.finish(), cells[..30].to_vec())
    }

    #[test]
    fn reduces_max_internal_fanout() {
        let (nl, gtl) = blob();
        let (out, report) = resynthesize(&nl, &gtl, &ResynthConfig { max_fanout: 3 });
        out.validate().unwrap();
        assert_eq!(report.nets_decomposed, 10);
        assert!(report.buffers_added >= 20);
        // Every net is now ≤ 3 pins.
        for net in out.nets() {
            assert!(out.net_degree(net) <= 3, "net {net} degree {}", out.net_degree(net));
        }
    }

    #[test]
    fn external_and_boundary_nets_untouched() {
        let (nl, gtl) = blob();
        let (out, _) = resynthesize(&nl, &gtl, &ResynthConfig { max_fanout: 3 });
        // The boundary net (cells[0], cells[30]) and outside chain survive.
        let boundary_intact = out.nets().any(|n| {
            let pins = out.net_cells(n);
            pins.len() == 2 && pins.contains(&CellId::new(0)) && pins.contains(&CellId::new(30))
        });
        assert!(boundary_intact);
    }

    #[test]
    fn cut_is_preserved() {
        let (nl, gtl) = blob();
        let (out, report) = resynthesize(&nl, &gtl, &ResynthConfig::default());
        // The resynthesized GTL = original members + all new buffers.
        let mut members: Vec<CellId> = gtl.clone();
        members.extend((nl.num_cells()..out.num_cells()).map(CellId::new));
        let before =
            SubsetStats::compute(&nl, &CellSet::from_cells(nl.num_cells(), gtl.iter().copied()));
        let after = SubsetStats::compute(&out, &CellSet::from_cells(out.num_cells(), members));
        assert_eq!(before.cut, after.cut, "boundary must not change");
        assert!(report.buffers_added > 0);
    }

    #[test]
    fn pin_density_drops() {
        let (nl, gtl) = blob();
        let (out, _) = resynthesize(&nl, &gtl, &ResynthConfig { max_fanout: 3 });
        let mut members: Vec<CellId> = gtl.clone();
        members.extend((nl.num_cells()..out.num_cells()).map(CellId::new));
        let before =
            SubsetStats::compute(&nl, &CellSet::from_cells(nl.num_cells(), gtl.iter().copied()));
        let after = SubsetStats::compute(&out, &CellSet::from_cells(out.num_cells(), members));
        assert!(
            after.avg_pins_per_cell() < before.avg_pins_per_cell(),
            "A_C {} → {}",
            before.avg_pins_per_cell(),
            after.avg_pins_per_cell()
        );
    }

    #[test]
    fn no_op_when_fanout_already_low() {
        let mut b = NetlistBuilder::new();
        let cells: Vec<_> = (0..5).map(|i| b.add_cell(format!("c{i}"), 1.0)).collect();
        for w in cells.windows(2) {
            b.add_anonymous_net([w[0], w[1]]);
        }
        let nl = b.finish();
        let (out, report) = resynthesize(&nl, &cells, &ResynthConfig::default());
        assert_eq!(report.nets_decomposed, 0);
        assert_eq!(report.buffers_added, 0);
        assert_eq!(out.num_cells(), nl.num_cells());
        assert_eq!(out.num_pins(), nl.num_pins());
    }

    #[test]
    #[should_panic(expected = "max_fanout")]
    fn tiny_fanout_rejected() {
        let (nl, gtl) = blob();
        let _ = resynthesize(&nl, &gtl, &ResynthConfig { max_fanout: 1 });
    }
}
