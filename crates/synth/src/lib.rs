//! Synthetic workload generators for the tangled-logic experiments.
//!
//! The DAC 2010 paper evaluates on three kinds of testcases; this crate
//! generates all of them (see `DESIGN.md` §4 for the substitution
//! rationale):
//!
//! * [`planted`] — random graphs with known planted GTLs, "generated based
//!   on \[Garbers et al.\]" (Table 1, Figures 2–3);
//! * [`structures`] — parameterized logic-structure macros (ripple-carry
//!   adders, decoders, MUX trees, multiplier arrays) whose synthesized
//!   form is exactly the kind of tangled logic the paper hunts;
//! * [`ispd_like`] — circuits with the size and connectivity shape of the
//!   ISPD 2005/2006 placement benchmarks, with embedded structures
//!   (Table 2, Figures 4–5);
//! * [`industrial`] — a design mimicking the paper's 65 nm industrial ASIC
//!   with dissolved-ROM blobs (Table 3, Figures 1, 6, 7).
//!
//! All generators are deterministic given their seed.
//!
//! # Example
//!
//! ```
//! use gtl_synth::planted::{self, PlantedConfig};
//!
//! let graph = planted::generate(&PlantedConfig {
//!     num_cells: 2_000,
//!     blocks: vec![150],
//!     seed: 7,
//!     ..PlantedConfig::default()
//! });
//! assert_eq!(graph.netlist.num_cells(), 2_000);
//! assert_eq!(graph.truth[0].len(), 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod industrial;
pub mod ispd_like;
pub mod planted;
pub mod resynth;
pub mod stream;
pub mod structures;

use gtl_netlist::{CellId, Netlist};

/// A generated circuit plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedCircuit {
    /// Human-readable instance name (e.g. `"bigblue1-like"`).
    pub name: String,
    /// The connectivity hypergraph.
    pub netlist: Netlist,
    /// Planted tangled structures, one member list per structure.
    pub truth: Vec<Vec<CellId>>,
}

impl GeneratedCircuit {
    /// Total number of planted cells across all structures.
    pub fn planted_cells(&self) -> usize {
        self.truth.iter().map(Vec::len).sum()
    }
}

/// Samples a net degree from a small circuit-like distribution
/// (mostly 2-pin, tapering off to `max`), used by several generators.
pub(crate) fn sample_net_degree<R: rand::Rng>(rng: &mut R, max: usize) -> usize {
    // Weights roughly matching published ISPD benchmark net profiles:
    // ~60% 2-pin, ~23% 3-pin, ~10% 4-pin, rest spread to `max`.
    let x: f64 = rng.gen();
    let d = if x < 0.60 {
        2
    } else if x < 0.83 {
        3
    } else if x < 0.93 {
        4
    } else if x < 0.97 {
        5
    } else {
        5 + rng.gen_range(1..=6usize)
    };
    d.min(max.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn net_degree_distribution_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 16];
        for _ in 0..10_000 {
            let d = sample_net_degree(&mut rng, 12);
            counts[d] += 1;
        }
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > counts[4]);
        assert_eq!(counts[0] + counts[1], 0);
        assert!(counts.iter().skip(13).all(|&c| c == 0));
    }

    #[test]
    fn net_degree_respects_max() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(sample_net_degree(&mut rng, 3) <= 3);
        }
    }
}
