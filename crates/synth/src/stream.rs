//! Streaming generation of multi-million-cell ISPD-like designs.
//!
//! [`crate::ispd_like::generate`] materializes the whole netlist in a
//! [`NetlistBuilder`] — fine at paper scale, but a 10M-cell design would
//! hold hundreds of MB of pins in memory just to serialize them again.
//! This module emits the same *kind* of design (embedded logic structures
//! on the low cell ids, a Rent-rule background wired by recursive
//! bipartition, boundary nets tying the two together) directly to a
//! [`Write`] sink as `.hgr` text in bounded memory: the only live state is
//! one structure's temporary builder, the recursion stack (`O(log cells)`)
//! and a reusable pin buffer.
//!
//! The `.hgr` header needs the net count before the body, so generation
//! runs twice with identical RNG streams: a counting pass, then the write
//! pass. Output is byte-deterministic for a given config, and a test pins
//! that the streamed bytes equal an in-memory twin built through
//! [`NetlistBuilder`].
//!
//! # Example
//!
//! ```
//! use gtl_synth::stream::{write_hgr, StreamDesignConfig};
//!
//! let mut out = Vec::new();
//! let stats = write_hgr(&StreamDesignConfig::new(2_000), &mut out)?;
//! assert_eq!(stats.cells, 2_000);
//! let nl = gtl_netlist::hgr::parse(out.as_slice(), "<streamed>")?;
//! assert_eq!(nl.num_cells(), 2_000);
//! # Ok::<(), gtl_netlist::NetlistError>(())
//! ```

use std::io::{BufWriter, Write};
use std::path::Path;

use gtl_netlist::{NetlistBuilder, NetlistError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::structures;

/// Configuration for the streaming ISPD-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDesignConfig {
    /// Total number of cells in the design.
    pub cells: usize,
    /// RNG seed; same seed + config = byte-identical output.
    pub seed: u64,
    /// Target Rent exponent of the background wiring.
    pub rent_exponent: f64,
    /// How many logic structures to embed on the low cell ids.
    pub structures: usize,
}

impl StreamDesignConfig {
    /// A config for `cells` cells with the defaults used by
    /// [`crate::ispd_like`]: Rent exponent 0.65, seed `0x15bd`, and a
    /// structure count that grows with the design (`~cells^0.4`, min 3).
    pub fn new(cells: usize) -> Self {
        let structures = ((cells as f64).powf(0.4) as usize).clamp(3, 512);
        Self { cells, seed: 0x15bd, rent_exponent: 0.65, structures }
    }
}

/// Size report from a completed [`write_hgr`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Cells in the design (equals `config.cells`).
    pub cells: usize,
    /// Nets emitted.
    pub nets: usize,
    /// Total pins emitted (after per-net dedup).
    pub pins: u64,
}

/// Streams an ISPD-like design to `out` as `.hgr` text in bounded memory.
///
/// # Panics
///
/// Panics if `config.cells < 64` — smaller designs should use the
/// in-memory [`crate::ispd_like::generate`].
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on write failure.
pub fn write_hgr<W: Write>(
    config: &StreamDesignConfig,
    out: W,
) -> Result<StreamStats, NetlistError> {
    assert!(config.cells >= 64, "streaming generator needs at least 64 cells");

    // Pass 1: count nets (the .hgr header precedes the body).
    let mut nets = 0usize;
    let mut pins = 0u64;
    emit_nets(config, &mut |net: &[u32]| {
        nets += 1;
        pins += net.len() as u64;
        Ok(())
    })?;

    // Pass 2: identical generation, this time writing lines.
    let mut w = BufWriter::new(out);
    writeln!(w, "{} {}", nets, config.cells)?;
    let mut line = String::with_capacity(128);
    emit_nets(config, &mut |net: &[u32]| {
        line.clear();
        for (k, pin) in net.iter().enumerate() {
            if k > 0 {
                line.push(' ');
            }
            // .hgr pins are 1-based.
            let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{}", pin + 1));
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
        Ok(())
    })?;
    w.flush()?;
    Ok(StreamStats { cells: config.cells, nets, pins })
}

/// [`write_hgr`] to a file path.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on create/write failure.
pub fn write_hgr_file(
    config: &StreamDesignConfig,
    path: impl AsRef<Path>,
) -> Result<StreamStats, NetlistError> {
    let file = std::fs::File::create(path)?;
    write_hgr(config, file)
}

/// Runs one full deterministic generation, handing each net's deduped
/// 0-based pins to `sink` in emission order. Both [`write_hgr`] passes and
/// the in-memory equivalence test drive this same function.
fn emit_nets(
    config: &StreamDesignConfig,
    sink: &mut dyn FnMut(&[u32]) -> Result<(), NetlistError>,
) -> Result<(), NetlistError> {
    // gtl-lint: allow(no-rng-outside-derive-stream, reason = "generator master stream; generation is single-threaded and sequential")
    let mut rng = SmallRng::seed_from_u64(config.seed ^ config.cells as u64);
    let mut pins: Vec<u32> = Vec::with_capacity(16);

    // --- Embedded structures on the low cell ids -----------------------
    // Each structure lives in its own small temporary builder; only its
    // (base, len) range survives, for the boundary-net pass below.
    let budget = config.cells / 2;
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(config.structures);
    let mut base = 0u32;
    for i in 0..config.structures {
        if base as usize >= budget {
            break;
        }
        let mut b = NetlistBuilder::new();
        match i % 4 {
            0 => structures::decoder(&mut b, rng.gen_range(5..=8)),
            1 => structures::mux_tree(&mut b, rng.gen_range(6..=9)),
            2 => structures::multiplier_array(&mut b, rng.gen_range(6..=12)),
            _ => structures::ripple_carry_adder(&mut b, rng.gen_range(32..=128)),
        };
        let built = b.finish();
        for net in built.nets() {
            pins.clear();
            pins.extend(built.net_cells(net).iter().map(|c| base + c.index() as u32));
            sink(&pins)?;
        }
        ranges.push((base, built.num_cells() as u32));
        base += built.num_cells() as u32;
    }

    // --- Rent-rule background ------------------------------------------
    let bg_lo = base;
    let bg_hi = config.cells as u32;
    rent_wire_range(bg_lo, bg_hi, config.rent_exponent, &mut rng, &mut pins, sink)?;

    // --- Structure boundary nets ---------------------------------------
    if bg_hi > bg_lo {
        for &(lo, len) in &ranges {
            let links = ((len as f64).sqrt() as usize).max(4);
            for _ in 0..links {
                let inside = lo + rng.gen_range(0..len);
                let deg = crate::sample_net_degree(&mut rng, 6);
                pins.clear();
                pins.push(inside);
                for _ in 1..deg {
                    push_dedup(&mut pins, rng.gen_range(bg_lo..bg_hi));
                }
                sink(&pins)?;
            }
        }
    }
    Ok(())
}

/// Rent-rule wiring over the index range `[lo, hi)`, mirroring
/// [`crate::ispd_like::rent_wire`] but without materializing cell slices:
/// a region of `m` cells gets `~0.75·m^p` nets crossing its midline.
fn rent_wire_range(
    lo: u32,
    hi: u32,
    rent_exponent: f64,
    rng: &mut SmallRng,
    pins: &mut Vec<u32>,
    sink: &mut dyn FnMut(&[u32]) -> Result<(), NetlistError>,
) -> Result<(), NetlistError> {
    let m = (hi - lo) as usize;
    if m < 2 {
        return Ok(());
    }
    if m <= 8 {
        for c in lo..hi - 1 {
            pins.clear();
            pins.push(c);
            pins.push(c + 1);
            sink(pins)?;
        }
        return Ok(());
    }
    let mid = lo + (m / 2) as u32;
    rent_wire_range(lo, mid, rent_exponent, rng, pins, sink)?;
    rent_wire_range(mid, hi, rent_exponent, rng, pins, sink)?;
    let cross = (0.75 * (m as f64).powf(rent_exponent)).ceil() as usize;
    for _ in 0..cross {
        let deg = crate::sample_net_degree(rng, 8);
        pins.clear();
        // At least one pin per side so the net truly crosses the midline.
        pins.push(lo + rng.gen_range(0..mid - lo));
        push_dedup(pins, mid + rng.gen_range(0..hi - mid));
        for _ in 2..deg {
            push_dedup(pins, lo + rng.gen_range(0..hi - lo));
        }
        sink(pins)?;
    }
    Ok(())
}

/// Keep-first-occurrence dedup, matching [`NetlistBuilder::add_net`]
/// semantics so streamed bytes re-parse to the identical netlist.
fn push_dedup(pins: &mut Vec<u32>, pin: u32) {
    if !pins.contains(&pin) {
        pins.push(pin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{hgr, CellId};

    #[test]
    fn output_is_deterministic() {
        let cfg = StreamDesignConfig::new(3_000);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let sa = write_hgr(&cfg, &mut a).unwrap();
        let sb = write_hgr(&cfg, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.nets > 0 && sa.pins > 0);
    }

    #[test]
    fn streamed_bytes_match_in_memory_twin() {
        // Feed the same emission into a NetlistBuilder and compare the
        // serialized forms byte for byte: proves the streaming writer and
        // the in-memory path describe the identical netlist.
        let cfg = StreamDesignConfig::new(1_500);
        let mut streamed = Vec::new();
        let stats = write_hgr(&cfg, &mut streamed).unwrap();

        let mut b = NetlistBuilder::with_capacity(cfg.cells, stats.nets);
        b.add_anonymous_cells(cfg.cells);
        emit_nets(&cfg, &mut |net| {
            b.add_anonymous_net(net.iter().map(|&p| CellId::new(p as usize)));
            Ok(())
        })
        .unwrap();
        let twin = b.finish();
        assert_eq!(String::from_utf8(streamed).unwrap(), hgr::to_string(&twin));
        assert_eq!(twin.num_pins() as u64, stats.pins);
    }

    #[test]
    fn streamed_design_parses_with_exact_cell_count() {
        let cfg = StreamDesignConfig { cells: 5_000, seed: 7, rent_exponent: 0.6, structures: 6 };
        let mut out = Vec::new();
        let stats = write_hgr(&cfg, &mut out).unwrap();
        let nl = hgr::parse(out.as_slice(), "<streamed>").unwrap();
        assert_eq!(nl.num_cells(), 5_000);
        assert_eq!(nl.num_nets(), stats.nets);
        assert_eq!(nl.num_pins() as u64, stats.pins);
        nl.validate().unwrap();
        // Pin density in a plausible standard-cell range.
        let a_g = nl.avg_pins_per_cell();
        assert!((1.5..8.0).contains(&a_g), "A(G) = {a_g}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = StreamDesignConfig::new(1_000);
        let mut a = Vec::new();
        write_hgr(&cfg, &mut a).unwrap();
        cfg.seed ^= 1;
        let mut b = Vec::new();
        write_hgr(&cfg, &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn file_writer_roundtrips() {
        let dir = std::env::temp_dir().join("gtl_synth_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamed.hgr");
        let stats = write_hgr_file(&StreamDesignConfig::new(800), &path).unwrap();
        let nl = hgr::read(&path).unwrap();
        assert_eq!(nl.num_cells(), 800);
        assert_eq!(nl.num_nets(), stats.nets);
    }

    #[test]
    #[should_panic(expected = "at least 64 cells")]
    fn tiny_design_panics() {
        let _ = write_hgr(&StreamDesignConfig::new(10), &mut Vec::new());
    }
}
