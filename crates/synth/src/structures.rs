//! Logic-structure macros: the shapes synthesis turns into tangled logic.
//!
//! The paper's introduction motivates GTLs with "entire logic structures
//! like adders and decoders"; its industrial GTLs were dissolved ROMs
//! (decoder + mux planes). This module generates gate-level netlist
//! fragments for those structures so that the ISPD-like and industrial
//! generators can embed realistic tangled logic, and so that examples can
//! demonstrate detection on recognizable circuits.
//!
//! Every generator appends cells/nets to a caller-provided
//! [`NetlistBuilder`] and returns the created cell ids. Structure-internal
//! signals become internal nets; the structure's external interface is
//! deliberately thin (a few boundary nets), mirroring synthesized macros.

use gtl_netlist::{CellId, NetlistBuilder};

/// Cells created for one structure instance.
#[derive(Debug, Clone)]
pub struct StructureCells {
    /// All cells of the structure, in creation order.
    pub cells: Vec<CellId>,
    /// Kind label (e.g. `"rca16"`), useful for reports.
    pub kind: String,
}

impl StructureCells {
    /// Number of cells in the structure.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the structure is empty (never true for these generators).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Appends an `bits`-bit ripple-carry adder: one full-adder cell per bit,
/// carry-chained, with XOR/AND decomposition cells (5 cells per bit).
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::structures::ripple_carry_adder;
///
/// let mut b = NetlistBuilder::new();
/// let adder = ripple_carry_adder(&mut b, 16);
/// assert_eq!(adder.len(), 16 * 5);
/// let nl = b.finish();
/// nl.validate().unwrap();
/// ```
pub fn ripple_carry_adder(b: &mut NetlistBuilder, bits: usize) -> StructureCells {
    assert!(bits > 0, "adder needs at least one bit");
    let mut cells = Vec::with_capacity(bits * 5);
    let mut carry: Option<CellId> = None;
    for i in 0..bits {
        // Gate-level FA: s = a^b^cin, cout = ab | cin(a^b).
        let x1 = b.add_cell(format!("add_x1_{i}"), 1.75); // a ^ b
        let x2 = b.add_cell(format!("add_x2_{i}"), 1.75); // sum
        let a1 = b.add_cell(format!("add_a1_{i}"), 1.25); // a & b
        let a2 = b.add_cell(format!("add_a2_{i}"), 1.25); // cin & (a^b)
        let o1 = b.add_cell(format!("add_o1_{i}"), 1.25); // cout

        // a^b feeds both the sum XOR and the carry AND.
        b.add_net(format!("add_p_{i}"), [x1, x2, a2]);
        // The generate term and propagate term feed the carry OR.
        b.add_net(format!("add_g_{i}"), [a1, o1]);
        b.add_net(format!("add_t_{i}"), [a2, o1]);
        // Carry chain: previous cout feeds this bit's sum XOR and AND.
        if let Some(c) = carry {
            b.add_net(format!("add_c_{i}"), [c, x2, a2]);
        }
        carry = Some(o1);
        cells.extend([x1, x2, a1, a2, o1]);
    }
    StructureCells { cells, kind: format!("rca{bits}") }
}

/// Appends a `select_bits`-to-`2^select_bits` decoder: one wide AND gate
/// per output plus inverters, with every select line fanning out across
/// the whole output plane — the classic high-fanout tangle.
///
/// # Panics
///
/// Panics unless `1 <= select_bits <= 12` (2¹² outputs = 4096 gates).
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::structures::decoder;
///
/// let mut b = NetlistBuilder::new();
/// let dec = decoder(&mut b, 5);
/// assert_eq!(dec.len(), 32 + 5); // outputs + select inverters
/// ```
pub fn decoder(b: &mut NetlistBuilder, select_bits: usize) -> StructureCells {
    assert!((1..=12).contains(&select_bits), "select_bits must be in 1..=12");
    let outputs = 1usize << select_bits;
    let mut cells = Vec::with_capacity(outputs + select_bits);

    // One inverter per select line produces the complement rail.
    let invs: Vec<CellId> =
        (0..select_bits).map(|i| b.add_cell(format!("dec_inv_{i}"), 0.5)).collect();
    cells.extend(&invs);

    // Output AND plane; area grows with fan-in (complex gates).
    let ands: Vec<CellId> = (0..outputs)
        .map(|o| b.add_cell(format!("dec_and_{o}"), 0.5 * select_bits as f64))
        .collect();
    cells.extend(&ands);

    // Each true rail connects its inverter and the outputs where the bit
    // is 1; each complement rail connects the outputs where the bit is 0.
    #[allow(clippy::needless_range_loop)] // bit doubles as the output-index mask
    for bit in 0..select_bits {
        let mut true_rail = vec![invs[bit]];
        let mut comp_rail = vec![invs[bit]];
        for (o, &gate) in ands.iter().enumerate() {
            if o >> bit & 1 == 1 {
                true_rail.push(gate);
            } else {
                comp_rail.push(gate);
            }
        }
        b.add_net(format!("dec_s{bit}"), true_rail);
        b.add_net(format!("dec_sn{bit}"), comp_rail);
    }
    StructureCells { cells, kind: format!("dec{select_bits}") }
}

/// Appends a `2^levels`-input multiplexer tree of MUX2 cells, with each
/// level's select line spanning all muxes of that level.
///
/// # Panics
///
/// Panics unless `1 <= levels <= 12`.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::structures::mux_tree;
///
/// let mut b = NetlistBuilder::new();
/// let tree = mux_tree(&mut b, 4);
/// assert_eq!(tree.len(), 15); // 8 + 4 + 2 + 1 muxes
/// ```
pub fn mux_tree(b: &mut NetlistBuilder, levels: usize) -> StructureCells {
    assert!((1..=12).contains(&levels), "levels must be in 1..=12");
    let mut cells = Vec::new();
    let mut prev: Vec<CellId> = Vec::new();
    for level in 0..levels {
        let count = 1usize << (levels - 1 - level);
        let muxes: Vec<CellId> =
            (0..count).map(|i| b.add_cell(format!("mux_{level}_{i}"), 2.25)).collect();
        // Data nets from the previous level (two children per mux).
        for (i, &m) in muxes.iter().enumerate() {
            if !prev.is_empty() {
                b.add_net(format!("mux_d_{level}_{i}a"), [prev[2 * i], m]);
                b.add_net(format!("mux_d_{level}_{i}b"), [prev[2 * i + 1], m]);
            }
        }
        // Shared select line across the level.
        if muxes.len() > 1 {
            b.add_net(format!("mux_sel_{level}"), muxes.clone());
        }
        cells.extend(&muxes);
        prev = muxes;
    }
    StructureCells { cells, kind: format!("mux{levels}") }
}

/// Appends an `n × n` array multiplier: AND partial products plus a
/// carry-save adder grid (`n² + ~2n²` cells) — the densest structure here.
///
/// # Panics
///
/// Panics unless `2 <= n <= 64`.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::structures::multiplier_array;
///
/// let mut b = NetlistBuilder::new();
/// let mult = multiplier_array(&mut b, 4);
/// assert!(mult.len() >= 16);
/// ```
pub fn multiplier_array(b: &mut NetlistBuilder, n: usize) -> StructureCells {
    assert!((2..=64).contains(&n), "n must be in 2..=64");
    let mut cells = Vec::new();

    // Partial-product AND gates, indexed [row][col].
    let mut pp = vec![vec![CellId::default(); n]; n];
    for (r, row) in pp.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            let g = b.add_cell(format!("mul_pp_{r}_{c}"), 1.25);
            *slot = g;
            cells.push(g);
        }
    }
    // Operand rails: row operand bit feeds a whole row, column bit a column.
    for (r, row) in pp.iter().enumerate() {
        b.add_net(format!("mul_a{r}"), row.iter().copied());
        let col: Vec<CellId> = (0..n).map(|q| pp[q][r]).collect();
        b.add_net(format!("mul_b{r}"), col);
    }
    // Carry-save adder rows: each adder sums a partial product with the
    // row above (sum + carry cells per position).
    let mut above: Vec<CellId> = pp[0].clone();
    #[allow(clippy::needless_range_loop)] // r indexes pp rows and net names
    for r in 1..n {
        let mut new_row = Vec::with_capacity(n);
        for c in 0..n {
            let s = b.add_cell(format!("mul_s_{r}_{c}"), 4.0);
            let k = b.add_cell(format!("mul_k_{r}_{c}"), 4.0);
            b.add_net(format!("mul_in_{r}_{c}"), [pp[r][c], s, k]);
            b.add_net(format!("mul_up_{r}_{c}"), [above[c], s, k]);
            if c > 0 {
                // Carry from the previous column of this row.
                let prev_k = new_row[2 * (c - 1) + 1];
                b.add_net(format!("mul_cc_{r}_{c}"), [prev_k, s]);
            }
            new_row.extend([s, k]);
            cells.extend([s, k]);
        }
        above = (0..n).map(|c| new_row[2 * c]).collect();
    }
    StructureCells { cells, kind: format!("mul{n}") }
}

/// Appends a `width`-bit, `log2(width)`-stage barrel shifter: each stage
/// is a rank of MUX2 cells whose data nets hop `2^stage` lanes — long
/// structured nets plus a per-stage select rail.
///
/// # Panics
///
/// Panics unless `width` is a power of two in `2..=1024`.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::structures::barrel_shifter;
///
/// let mut b = NetlistBuilder::new();
/// let s = barrel_shifter(&mut b, 16);
/// assert_eq!(s.len(), 16 * 4); // width × log2(width)
/// ```
pub fn barrel_shifter(b: &mut NetlistBuilder, width: usize) -> StructureCells {
    assert!(
        width.is_power_of_two() && (2..=1024).contains(&width),
        "width must be a power of two in 2..=1024"
    );
    let stages = width.trailing_zeros() as usize;
    let mut cells = Vec::with_capacity(width * stages);
    let mut prev: Vec<CellId> = Vec::new();
    for stage in 0..stages {
        let rank: Vec<CellId> =
            (0..width).map(|lane| b.add_cell(format!("bsh_{stage}_{lane}"), 2.25)).collect();
        let hop = 1usize << stage;
        for lane in 0..width {
            if !prev.is_empty() {
                // Straight-through and shifted data inputs.
                b.add_net(format!("bsh_d_{stage}_{lane}"), [prev[lane], rank[lane]]);
                b.add_net(
                    format!("bsh_s_{stage}_{lane}"),
                    [prev[(lane + hop) % width], rank[lane]],
                );
            }
        }
        b.add_net(format!("bsh_sel_{stage}"), rank.iter().copied());
        cells.extend(&rank);
        prev = rank;
    }
    StructureCells { cells, kind: format!("bsh{width}") }
}

/// Appends an `n × n` crossbar: one transfer cell per (input, output)
/// pair, with input rails spanning rows and output wired-OR nets spanning
/// columns — quadratic cells, extremely pin-dense.
///
/// # Panics
///
/// Panics unless `2 <= n <= 64`.
///
/// # Example
///
/// ```
/// use gtl_netlist::NetlistBuilder;
/// use gtl_synth::structures::crossbar;
///
/// let mut b = NetlistBuilder::new();
/// let s = crossbar(&mut b, 8);
/// assert_eq!(s.len(), 64);
/// ```
pub fn crossbar(b: &mut NetlistBuilder, n: usize) -> StructureCells {
    assert!((2..=64).contains(&n), "n must be in 2..=64");
    let mut cells = Vec::with_capacity(n * n);
    let mut grid = vec![vec![CellId::default(); n]; n];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            let cell = b.add_cell(format!("xbar_{r}_{c}"), 1.5);
            *slot = cell;
            cells.push(cell);
        }
    }
    for (r, row) in grid.iter().enumerate() {
        b.add_net(format!("xbar_in{r}"), row.iter().copied());
    }
    #[allow(clippy::needless_range_loop)] // c indexes columns across rows
    for c in 0..n {
        b.add_net(format!("xbar_out{c}"), (0..n).map(|r| grid[r][c]));
    }
    StructureCells { cells, kind: format!("xbar{n}") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellSet, SubsetStats};

    fn density(build: impl FnOnce(&mut NetlistBuilder) -> StructureCells) -> (f64, usize) {
        let mut b = NetlistBuilder::new();
        let s = build(&mut b);
        let nl = b.finish();
        nl.validate().unwrap();
        let set = CellSet::from_cells(nl.num_cells(), s.cells.iter().copied());
        let stats = SubsetStats::compute(&nl, &set);
        (stats.avg_pins_per_cell(), stats.cut)
    }

    #[test]
    fn adder_structure() {
        let mut b = NetlistBuilder::new();
        let s = ripple_carry_adder(&mut b, 8);
        assert_eq!(s.len(), 40);
        assert_eq!(s.kind, "rca8");
        let nl = b.finish();
        nl.validate().unwrap();
        // Standalone structure: everything is internal, cut = 0.
        let set = CellSet::from_cells(nl.num_cells(), s.cells.iter().copied());
        assert_eq!(SubsetStats::compute(&nl, &set).cut, 0);
    }

    #[test]
    fn adder_is_connected_chain() {
        let mut b = NetlistBuilder::new();
        let s = ripple_carry_adder(&mut b, 4);
        let nl = b.finish();
        // BFS from the first cell reaches all cells.
        let mut seen = CellSet::new(nl.num_cells());
        let mut stack = vec![s.cells[0]];
        seen.insert(s.cells[0]);
        while let Some(u) = stack.pop() {
            for &net in nl.cell_nets(u) {
                for &v in nl.net_cells(net) {
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn decoder_has_high_pin_density() {
        let (a_c, _) = density(|b| decoder(b, 6));
        // Every output AND touches all 6 select rails.
        assert!(a_c > 5.0, "A_C = {a_c}");
    }

    #[test]
    fn decoder_select_rails_span_outputs() {
        let mut b = NetlistBuilder::new();
        let s = decoder(&mut b, 3);
        let nl = b.finish();
        assert_eq!(s.len(), 8 + 3);
        // true rail + comp rail of each bit cover inverter + 8 outputs.
        for net in nl.nets() {
            let d = nl.net_degree(net);
            assert_eq!(d, 5); // 4 outputs + 1 inverter
        }
    }

    #[test]
    fn mux_tree_counts() {
        let mut b = NetlistBuilder::new();
        let s = mux_tree(&mut b, 5);
        assert_eq!(s.len(), 31);
        let nl = b.finish();
        nl.validate().unwrap();
    }

    #[test]
    fn multiplier_is_dense() {
        let (a_c, cut) = density(|b| multiplier_array(b, 6));
        assert!(a_c > 3.0, "A_C = {a_c}");
        assert_eq!(cut, 0);
    }

    #[test]
    fn structures_compose_in_one_builder() {
        let mut b = NetlistBuilder::new();
        let a = ripple_carry_adder(&mut b, 4);
        let d = decoder(&mut b, 3);
        let m = mux_tree(&mut b, 3);
        let nl = b.finish();
        nl.validate().unwrap();
        assert_eq!(nl.num_cells(), a.len() + d.len() + m.len());
        // No structure shares nets with another: cuts are all 0.
        for s in [&a, &d, &m] {
            let set = CellSet::from_cells(nl.num_cells(), s.cells.iter().copied());
            assert_eq!(SubsetStats::compute(&nl, &set).cut, 0);
        }
    }

    #[test]
    fn barrel_shifter_counts_and_validity() {
        let mut b = NetlistBuilder::new();
        let s = barrel_shifter(&mut b, 8);
        assert_eq!(s.len(), 24);
        assert_eq!(s.kind, "bsh8");
        let nl = b.finish();
        nl.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn barrel_shifter_rejects_non_power() {
        let mut b = NetlistBuilder::new();
        barrel_shifter(&mut b, 12);
    }

    #[test]
    fn crossbar_is_extremely_pin_dense() {
        let (a_c, cut) = density(|b| crossbar(b, 8));
        assert!(a_c >= 2.0, "A_C = {a_c}");
        assert_eq!(cut, 0);
        // Every cell sits on exactly one row rail and one column rail.
        let mut b = NetlistBuilder::new();
        let s = crossbar(&mut b, 4);
        let nl = b.finish();
        for &c in &s.cells {
            assert_eq!(nl.cell_degree(c), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bit_adder_panics() {
        let mut b = NetlistBuilder::new();
        ripple_carry_adder(&mut b, 0);
    }

    #[test]
    #[should_panic(expected = "select_bits")]
    fn oversized_decoder_panics() {
        let mut b = NetlistBuilder::new();
        decoder(&mut b, 13);
    }
}
