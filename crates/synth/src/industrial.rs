//! Industrial-like circuit with dissolved-ROM blobs (Table 3, Figs 1/6/7).
//!
//! The paper's industrial testcase is a 65 nm commercial ASIC in which ROM
//! blocks had been dissolved into ordinary logic to meet timing closure.
//! The designers knew five such blobs (~32K cells × 4 plus ~11K), and the
//! finder recovered them with cuts of only 28–36 nets and GTL-Scores of
//! ≈ 0.025.
//!
//! We cannot ship the proprietary design, so this module builds the
//! closest public equivalent: a Rent-rule background with five embedded
//! ROM-fabric blobs. Each blob is a word-line/bit-line grid (the physical
//! structure of a ROM array) plus dense random decode logic — yielding the
//! signature the paper reports: tens of thousands of cells, pin density
//! above the design average, and a boundary of only a few dozen nets.

use gtl_netlist::{CellId, NetlistBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ispd_like::rent_wire;
use crate::GeneratedCircuit;

/// Configuration for the industrial-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndustrialConfig {
    /// Cell-count scale in `(0, 1]`; 1.0 ≈ 1.5M cells with the paper's
    /// blob sizes (4 × 32K + 11K).
    pub scale: f64,
    /// Target Rent exponent of the background wiring.
    pub rent_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IndustrialConfig {
    fn default() -> Self {
        Self { scale: 0.05, rent_exponent: 0.65, seed: 0x65_AA }
    }
}

/// The paper's Table 3 blob sizes (cells) and boundary cuts.
pub const PAPER_BLOBS: [(usize, usize); 5] =
    [(31_880, 36), (31_914, 36), (31_754, 36), (32_002, 36), (10_932, 28)];

/// Total design size at scale 1.0. The paper's ASIC is described only as
/// "industrial"; its Figure 6 shows the blobs as localized patches, so the
/// blobs (≈139K cells) are taken to be under 10% of the design.
const FULL_CELLS: usize = 1_500_000;

/// Generates the industrial-like circuit.
///
/// Blobs occupy the low cell ids; `truth` holds their memberships in
/// Table 3 order. At scale 1.0 the boundary cuts equal the paper's values
/// (36/36/36/36/28); at smaller scales they shrink as `cut·scale^p` so the
/// blobs keep the paper's GTL-Score of ≈ 0.025 — the signature being
/// reproduced is "giant blob, tiny cut".
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
///
/// # Example
///
/// ```
/// use gtl_synth::industrial::{generate, IndustrialConfig};
///
/// let g = generate(&IndustrialConfig { scale: 0.01, ..IndustrialConfig::default() });
/// assert_eq!(g.truth.len(), 5);
/// # g.netlist.validate().unwrap();
/// ```
pub fn generate(config: &IndustrialConfig) -> GeneratedCircuit {
    assert!(config.scale > 0.0 && config.scale <= 1.0, "scale must be in (0, 1]");
    // gtl-lint: allow(no-rng-outside-derive-stream, reason = "generator master stream; generation is single-threaded and sequential")
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let s = |v: usize| ((v as f64 * config.scale) as usize).max(64);

    let total = s(FULL_CELLS);
    let mut b = NetlistBuilder::with_capacity(total, total * 2);

    // --- ROM blobs -------------------------------------------------------
    let mut truth = Vec::with_capacity(PAPER_BLOBS.len());
    for (blob_idx, &(size, cut)) in PAPER_BLOBS.iter().enumerate() {
        let size = s(size);
        let first = b.add_anonymous_cells(size);
        let members: Vec<CellId> = (first.index()..first.index() + size).map(CellId::new).collect();
        rom_fabric(&mut b, &members, blob_idx, &mut rng);
        truth.push((members, cut));
    }
    let blob_cells = b.num_cells();

    // --- Background --------------------------------------------------------
    let bg_count = total.saturating_sub(blob_cells).max(64);
    let bg_first = b.add_anonymous_cells(bg_count);
    let bg: Vec<CellId> =
        (bg_first.index()..bg_first.index() + bg_count).map(CellId::new).collect();
    rent_wire(&mut b, &bg, config.rent_exponent, &mut rng);

    // --- Blob boundaries: the paper's cuts, Rent-scaled ---------------------
    for (members, cut) in &truth {
        let links = ((*cut as f64 * config.scale.powf(config.rent_exponent)).round() as usize)
            .clamp(4, *cut);
        for _ in 0..links {
            let inside = members[rng.gen_range(0..members.len())];
            let outside = bg[rng.gen_range(0..bg.len())];
            b.add_anonymous_net([inside, outside]);
        }
    }

    GeneratedCircuit {
        name: format!("industrial-like-x{:.3}", config.scale),
        netlist: b.finish(),
        truth: truth.into_iter().map(|(m, _)| m).collect(),
    }
}

/// Wires `members` as a ROM fabric: row word-lines, column bit-lines, and
/// dense random decode nets. High fanout rails + short dense nets give the
/// blob its high pin density and tiny external boundary.
fn rom_fabric(b: &mut NetlistBuilder, members: &[CellId], blob_idx: usize, rng: &mut SmallRng) {
    let n = members.len();
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);

    // Word lines: each row of up to `cols` cells shares one net.
    for r in 0..rows {
        let lo = r * cols;
        let hi = ((r + 1) * cols).min(n);
        if hi - lo >= 2 {
            b.add_net(format!("rom{blob_idx}_wl{r}"), members[lo..hi].iter().copied());
        }
    }
    // Bit lines: each column shares one net.
    for c in 0..cols {
        let pins: Vec<CellId> =
            (0..rows).filter_map(|r| members.get(r * cols + c).copied()).collect();
        if pins.len() >= 2 {
            b.add_net(format!("rom{blob_idx}_bl{c}"), pins);
        }
    }
    // Decode logic: ~3 dense random nets per cell — a dissolved ROM is
    // wiring-dominated, which is what makes the blob a routing hotspot
    // even at uniform cell density (and gives it A_C ≫ A_G).
    let extra = n * 3;
    for _ in 0..extra {
        let deg = 2 + rng.gen_range(0..3usize);
        let mut pins = Vec::with_capacity(deg);
        for _ in 0..deg {
            pins.push(members[rng.gen_range(0..n)]);
        }
        b.add_anonymous_net(pins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtl_netlist::{CellSet, SubsetStats};

    fn small() -> GeneratedCircuit {
        generate(&IndustrialConfig { scale: 0.01, ..IndustrialConfig::default() })
    }

    #[test]
    fn five_blobs_with_paper_proportions() {
        let g = small();
        assert_eq!(g.truth.len(), 5);
        // Four big blobs of roughly equal size, one smaller.
        let sizes: Vec<usize> = g.truth.iter().map(Vec::len).collect();
        for i in 0..4 {
            let ratio = sizes[i] as f64 / sizes[4] as f64;
            assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
        }
        g.netlist.validate().unwrap();
    }

    #[test]
    fn blob_cuts_are_tiny() {
        let g = small();
        for (i, members) in g.truth.iter().enumerate() {
            let set = CellSet::from_cells(g.netlist.num_cells(), members.iter().copied());
            let stats = SubsetStats::compute(&g.netlist, &set);
            // Rent-scaled from the paper's 36/28; far below the Rent
            // expectation A_G·size^p for a group this large.
            let rent_expectation = g.netlist.avg_pins_per_cell() * (stats.size as f64).powf(0.65);
            assert!(stats.cut >= 4, "blob {i} disconnected from background");
            assert!(
                (stats.cut as f64) < 0.1 * rent_expectation,
                "blob {i}: cut {} not ≪ Rent expectation {rent_expectation:.0}",
                stats.cut
            );
        }
    }

    #[test]
    fn blobs_are_pin_dense() {
        let g = small();
        let a_g = g.netlist.avg_pins_per_cell();
        for members in &g.truth {
            let set = CellSet::from_cells(g.netlist.num_cells(), members.iter().copied());
            let stats = SubsetStats::compute(&g.netlist, &set);
            assert!(
                stats.avg_pins_per_cell() > a_g,
                "blob A_C {} <= A_G {a_g}",
                stats.avg_pins_per_cell()
            );
        }
    }

    #[test]
    fn blob_scores_are_strongly_tangled() {
        // The paper reports GTL-Score ≈ 0.025-0.028 for the blobs; at our
        // test scale the score should likewise be ≪ 0.1.
        let g = small();
        let ctx = gtl_tangled::DesignContext::new(&g.netlist, 0.65);
        for members in &g.truth {
            let set = CellSet::from_cells(g.netlist.num_cells(), members.iter().copied());
            let stats = SubsetStats::compute(&g.netlist, &set);
            let score = gtl_tangled::metrics::ngtl_score(stats.cut, stats.size, &ctx);
            assert!(score < 0.1, "score {score}");
        }
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.netlist.num_pins(), b.netlist.num_pins());
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bad_scale_panics() {
        generate(&IndustrialConfig { scale: 1.5, ..IndustrialConfig::default() });
    }
}
