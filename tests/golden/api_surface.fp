# wire surface of crates/api/src/types.rs (token-canonical)
pub const API_VERSION: u32 = 5;
pub const MIN_API_VERSION: u32 = 1;
pub const METRICS_SINCE_VERSION: u32 = 2;
pub const DEADLINE_SINCE_VERSION: u32 = 3;
pub const SESSION_SINCE_VERSION: u32 = 4;
pub const TRACE_SINCE_VERSION: u32 = 5;
pub const METRICS_TEXT_SINCE_VERSION: u32 = 5;
pub struct NetlistSummary {
  pub num_cells: usize
  pub num_nets: usize
  pub num_pins: usize
  pub avg_pins_per_cell: f64
}
pub struct FindRequest {
  pub v: u32
  pub config: FinderConfig
  pub deadline_ms: Option<u64>
  pub session: Option<String>
}
pub struct FindResponse {
  pub v: u32
  pub netlist: NetlistSummary
  pub result: FinderResult
  pub trace: Option<String>
}
pub struct PlaceRequest {
  pub v: u32
  pub utilization: f64
  pub placer: PlacerConfig
  pub routing: RoutingConfig
  pub deadline_ms: Option<u64>
  pub session: Option<String>
}
pub struct PlaceResponse {
  pub v: u32
  pub netlist: NetlistSummary
  pub die: Die
  pub hpwl: f64
  pub congestion: CongestionReport
  pub trace: Option<String>
}
pub struct StatsRequest {
  pub v: u32
  pub session: Option<String>
}
pub struct StatsResponse {
  pub v: u32
  pub stats: NetlistStats
  pub trace: Option<String>
}
pub struct LoadNetlistRequest {
  pub v: u32
  pub name: String
  pub path: String
}
pub struct LoadNetlistResponse {
  pub v: u32
  pub session: SessionInfo
  pub replaced: bool
  pub evicted: Vec<String>
  pub trace: Option<String>
}
pub struct UnloadNetlistRequest {
  pub v: u32
  pub name: String
}
pub struct UnloadNetlistResponse {
  pub v: u32
  pub name: String
  pub trace: Option<String>
}
pub struct ListSessionsRequest {
  pub v: u32
}
pub struct ListSessionsResponse {
  pub v: u32
  pub sessions: Vec<SessionInfo>
  pub trace: Option<String>
}
pub struct SessionInfo {
  pub name: String
  pub generation: u64
  pub netlist: NetlistSummary
}
pub struct MetricsRequest {
  pub v: u32
}
pub struct MetricsResponse {
  pub v: u32
  pub metrics: RuntimeMetrics
  pub trace: Option<String>
}
pub struct RuntimeMetrics {
  pub lanes: u64
  pub queue_capacity: u64
  pub pipeline_depth: u64
  pub tenant_quota: u64
  pub connections_accepted: u64
  pub connections_active: u64
  pub requests: u64
  pub responses: u64
  pub read_timeouts: u64
  pub io_errors: u64
  pub handler_panics: u64
  pub jobs_cancelled: u64
  pub deadlines_exceeded: u64
  pub fair_share_violations: u64
  pub queue_depth: u64
  pub queue_high_water: u64
  pub cache_capacity_bytes: u64
  pub cache_entries: u64
  pub cache_bytes: u64
  pub cache_hits: u64
  pub cache_misses: u64
  pub cache_evictions: u64
  pub cache_insertions: u64
  pub sessions_active: u64
  pub sessions_loaded: u64
  pub sessions_evicted: u64
  pub sessions_unloaded: u64
  pub registry_bytes: u64
  pub registry_capacity_bytes: u64
  pub responses_traced: u64
  pub stage_latency: Vec<LatencyStats>
  pub kind_latency: Vec<LatencyStats>
}
pub struct LatencyStats {
  pub label: String
  pub count: u64
  pub sum_us: u64
  pub max_us: u64
  pub p50_us: u64
  pub p95_us: u64
  pub p99_us: u64
  pub buckets: Vec<u64>
}
pub struct MetricsTextRequest {
  pub v: u32
}
pub struct MetricsTextResponse {
  pub v: u32
  pub text: String
  pub trace: Option<String>
}
pub struct ErrorBody {
  pub v: u32
  pub code: String
  pub message: String
  pub trace: Option<String>
}
pub enum Request {
  Find(FindRequest)
  Place(PlaceRequest)
  Stats(StatsRequest)
  Metrics(MetricsRequest)
  MetricsText(MetricsTextRequest)
  LoadNetlist(LoadNetlistRequest)
  UnloadNetlist(UnloadNetlistRequest)
  ListSessions(ListSessionsRequest)
}
pub enum Response {
  Find(FindResponse)
  Place(PlaceResponse)
  Stats(StatsResponse)
  Metrics(MetricsResponse)
  MetricsText(MetricsTextResponse)
  LoadNetlist(LoadNetlistResponse)
  UnloadNetlist(UnloadNetlistResponse)
  ListSessions(ListSessionsResponse)
  Error(ErrorBody)
}
