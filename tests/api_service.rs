//! The PR-acceptance contract, end to end: `gtl find --json` and a
//! `gtl serve` TCP round-trip produce **byte-identical** `FindResponse`
//! JSON, for 1, 2 and 8 workers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gtl_api::{FindRequest, Request, ServeOptions, Session};
use gtl_tangled::FinderConfig;

/// The checked-in two-5-cliques design — the same file the CI serve
/// golden round-trip replays, so both checks exercise one fixture.
fn fixture_path() -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/two_cliques.hgr");
    assert!(path.exists(), "golden fixture missing: {}", path.display());
    path.display().to_string()
}

fn config(threads: usize) -> FinderConfig {
    FinderConfig {
        num_seeds: 10,
        min_size: 3,
        max_order_len: 10,
        rng_seed: 0xDAC,
        threads,
        ..FinderConfig::default()
    }
}

/// One TCP round-trip against a fresh single-connection server.
fn serve_round_trip(session: &Session, line: &str) -> String {
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            gtl_api::serve(session, &listener, &ServeOptions::new().max_connections(Some(1)))
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        writeln!(conn, "{line}").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        BufReader::new(conn).read_line(&mut response).unwrap();
        response.trim_end().to_string()
    })
}

#[test]
fn cli_json_equals_serve_payload_for_1_2_8_workers() {
    let path = fixture_path();
    let mut payloads = Vec::new();
    for threads in [1usize, 2, 8] {
        // One-shot CLI.
        let cli_out = gtl_cli::run(&[
            "find".into(),
            path.clone(),
            "--seeds".into(),
            "10".into(),
            "--min-size".into(),
            "3".into(),
            "--max-order".into(),
            "10".into(),
            "--rng".into(),
            format!("{}", 0xDAC),
            "--threads".into(),
            threads.to_string(),
            "--json".into(),
        ])
        .unwrap();
        let cli_json = cli_out.trim_end().to_string();

        // Serve round-trip with the equivalent request.
        let session = Session::builder().load(&path).unwrap().build().unwrap();
        let line = serde::json::to_string(&Request::Find(FindRequest::new(config(threads))));
        let envelope = serve_round_trip(&session, &line);

        // The envelope is exactly {"Find":<payload>}.
        let payload = envelope
            .strip_prefix("{\"Find\":")
            .and_then(|rest| rest.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unexpected envelope {envelope}"));
        assert_eq!(payload, cli_json, "serve payload != `gtl find --json` ({threads} workers)");
        payloads.push(cli_json);
    }
    assert!(payloads[0].contains("\"gtls\":[{"), "no GTLs found: {}", payloads[0]);
    assert_eq!(payloads[0], payloads[1], "2 workers changed the bytes");
    assert_eq!(payloads[0], payloads[2], "8 workers changed the bytes");
}

#[test]
fn serve_stats_and_errors_over_tcp() {
    let path = fixture_path();
    let session = Session::builder().load(&path).unwrap().build().unwrap();
    let stats = serve_round_trip(&session, "{\"Stats\":{\"v\":1}}");
    assert!(stats.contains("\"num_cells\":10"), "{stats}");
    let err = serve_round_trip(&session, "{\"Find\":{\"v\":99,\"config\":{}}}");
    assert!(err.contains("\"code\":\"bad_request\""), "{err}");
    let err = serve_round_trip(&session, "{\"Nope\":{}}");
    assert!(err.contains("unknown variant"), "{err}");
}
