//! The PR-acceptance contract, end to end: `gtl find --json` and a
//! `gtl serve` TCP round-trip produce **byte-identical** `FindResponse`
//! JSON, for 1, 2 and 8 workers — plus the frozen-wire golden replays
//! (v1 Find, v4 session administration) against the checked-in bytes
//! in `tests/golden/`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gtl_api::{
    FindRequest, ListSessionsRequest, LoadNetlistRequest, Request, ServeOptions, Session,
    UnloadNetlistRequest,
};
use gtl_tangled::ordering::GrowthCriterion;
use gtl_tangled::{FinderConfig, MetricKind};

/// The checked-in two-5-cliques design — the same file the CI serve
/// golden round-trip replays, so both checks exercise one fixture.
fn fixture_path() -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/two_cliques.hgr");
    assert!(path.exists(), "golden fixture missing: {}", path.display());
    path.display().to_string()
}

fn config(threads: usize) -> FinderConfig {
    FinderConfig {
        num_seeds: 10,
        min_size: 3,
        max_order_len: 10,
        rng_seed: 0xDAC,
        threads,
        ..FinderConfig::default()
    }
}

/// One TCP round-trip against a fresh single-connection server.
fn serve_round_trip(session: &Session, line: &str) -> String {
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            gtl_api::serve(session, &listener, &ServeOptions::new().max_connections(Some(1)))
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        writeln!(conn, "{line}").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        BufReader::new(conn).read_line(&mut response).unwrap();
        response.trim_end().to_string()
    })
}

#[test]
fn cli_json_equals_serve_payload_for_1_2_8_workers() {
    let path = fixture_path();
    let mut payloads = Vec::new();
    for threads in [1usize, 2, 8] {
        // One-shot CLI.
        let cli_out = gtl_cli::run(&[
            "find".into(),
            path.clone(),
            "--seeds".into(),
            "10".into(),
            "--min-size".into(),
            "3".into(),
            "--max-order".into(),
            "10".into(),
            "--rng".into(),
            format!("{}", 0xDAC),
            "--threads".into(),
            threads.to_string(),
            "--json".into(),
        ])
        .unwrap();
        let cli_json = cli_out.trim_end().to_string();

        // Serve round-trip with the equivalent request.
        let session = Session::builder().load(&path).unwrap().build().unwrap();
        let line = serde::json::to_string(&Request::Find(FindRequest::new(config(threads))));
        let envelope = serve_round_trip(&session, &line);

        // The envelope is exactly {"Find":<payload>}.
        let payload = envelope
            .strip_prefix("{\"Find\":")
            .and_then(|rest| rest.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unexpected envelope {envelope}"));
        assert_eq!(payload, cli_json, "serve payload != `gtl find --json` ({threads} workers)");
        payloads.push(cli_json);
    }
    assert!(payloads[0].contains("\"gtls\":[{"), "no GTLs found: {}", payloads[0]);
    assert_eq!(payloads[0], payloads[1], "2 workers changed the bytes");
    assert_eq!(payloads[0], payloads[2], "8 workers changed the bytes");
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Plays `lines` over one connection against a fresh server and returns
/// the response lines. `pipeline_depth(1)` keeps the replay serial, so
/// registry administration ordering is part of the contract.
fn replay_script(session: &Session, options: ServeOptions, lines: &[String]) -> Vec<String> {
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = options.pipeline_depth(1).max_connections(Some(1));
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gtl_api::serve(session, &listener, &options).unwrap());
        let mut conn = TcpStream::connect(addr).unwrap();
        for line in lines {
            writeln!(conn, "{line}").unwrap();
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
        server.join().unwrap();
        got
    })
}

/// The v1 golden stays frozen: replaying the checked-in request line
/// through a current server reproduces the checked-in response bytes —
/// the same contract the CI `/dev/tcp` golden step enforces, runnable
/// locally via `cargo test`.
#[test]
fn golden_v1_find_replay_is_frozen() {
    let request = std::fs::read_to_string(golden_dir().join("serve_find_request.json")).unwrap();
    let expected = std::fs::read_to_string(golden_dir().join("serve_find_response.json")).unwrap();
    let session = Session::builder().load(&fixture_path()).unwrap().build().unwrap();
    let got = replay_script(&session, ServeOptions::new().lanes(2), &[request.trim().to_string()]);
    assert_eq!(got, vec![expected.trim_end().to_string()], "v1 golden bytes changed");
}

/// The v4 golden script: LoadNetlist → session-addressed Find →
/// ListSessions → UnloadNetlist. Checked-in request *and* response
/// bytes both stay frozen; `GTL_BLESS=1` regenerates them.
#[test]
fn golden_v4_session_script_replay() {
    let find_config = FinderConfig {
        num_seeds: 10,
        max_order_len: 10,
        lambda_threshold: 20,
        criterion: GrowthCriterion::WeightFirst,
        metric: MetricKind::GtlSd,
        min_size: 3,
        accept_threshold: 0.9,
        prominence: 1.2,
        max_fraction: 0.5,
        refine_seeds: 3,
        refine: true,
        threads: 2,
        rng_seed: 3500,
        rent_exponent: None,
    };
    let mut find = FindRequest::new(find_config);
    find.session = Some("alt".to_string());
    let script = vec![
        serde::json::to_string(&Request::LoadNetlist(LoadNetlistRequest::new(
            "alt",
            "two_cliques.hgr",
        ))),
        serde::json::to_string(&Request::Find(find)),
        serde::json::to_string(&Request::ListSessions(ListSessionsRequest::new())),
        serde::json::to_string(&Request::UnloadNetlist(UnloadNetlistRequest::new("alt"))),
    ];
    let session = Session::builder().load(&fixture_path()).unwrap().build().unwrap();
    let options = ServeOptions::new().lanes(2).max_netlists(4).netlist_dir(Some(golden_dir()));
    let got = replay_script(&session, options, &script);
    assert_eq!(got.len(), script.len(), "{got:?}");

    let requests_path = golden_dir().join("serve_session_requests.json");
    let responses_path = golden_dir().join("serve_session_responses.json");
    let render = |lines: &[String]| lines.join("\n") + "\n";
    if std::env::var("GTL_BLESS").is_ok() {
        std::fs::write(&requests_path, render(&script)).unwrap();
        std::fs::write(&responses_path, render(&got)).unwrap();
        return;
    }
    let requests = std::fs::read_to_string(&requests_path).unwrap();
    assert_eq!(requests, render(&script), "v4 golden request bytes changed");
    let responses = std::fs::read_to_string(&responses_path).unwrap();
    assert_eq!(responses, render(&got), "v4 golden response bytes changed");
}

#[test]
fn serve_stats_and_errors_over_tcp() {
    let path = fixture_path();
    let session = Session::builder().load(&path).unwrap().build().unwrap();
    let stats = serve_round_trip(&session, "{\"Stats\":{\"v\":1}}");
    assert!(stats.contains("\"num_cells\":10"), "{stats}");
    let err = serve_round_trip(&session, "{\"Find\":{\"v\":99,\"config\":{}}}");
    assert!(err.contains("\"code\":\"bad_request\""), "{err}");
    let err = serve_round_trip(&session, "{\"Nope\":{}}");
    assert!(err.contains("unknown variant"), "{err}");
}
