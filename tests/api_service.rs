//! The PR-acceptance contract, end to end: `gtl find --json` and a
//! `gtl serve` TCP round-trip produce **byte-identical** `FindResponse`
//! JSON, for 1, 2 and 8 workers — plus the frozen-wire golden replays
//! (v1 Find, v4 session administration) against the checked-in bytes
//! in `tests/golden/`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use gtl_api::{
    FindRequest, ListSessionsRequest, LoadNetlistRequest, Request, ServeOptions, Session,
    UnloadNetlistRequest,
};
use gtl_tangled::ordering::GrowthCriterion;
use gtl_tangled::{FinderConfig, MetricKind};

/// The checked-in two-5-cliques design — the same file the CI serve
/// golden round-trip replays, so both checks exercise one fixture.
fn fixture_path() -> String {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/two_cliques.hgr");
    assert!(path.exists(), "golden fixture missing: {}", path.display());
    path.display().to_string()
}

fn config(threads: usize) -> FinderConfig {
    FinderConfig {
        num_seeds: 10,
        min_size: 3,
        max_order_len: 10,
        rng_seed: 0xDAC,
        threads,
        ..FinderConfig::default()
    }
}

/// Drops the v5 trace stamp (`,"trace":"…"`) so wire bytes can be
/// compared against in-process oracles, which are never stamped.
fn strip_trace(line: &str) -> String {
    let Some(start) = line.find(",\"trace\":\"") else { return line.to_string() };
    let rest = &line[start + 10..];
    let end = rest.find('"').unwrap();
    format!("{}{}", &line[..start], &rest[end + 1..])
}

/// One TCP round-trip against a fresh single-connection server.
fn serve_round_trip(session: &Session, line: &str) -> String {
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            gtl_api::serve(session, &listener, &ServeOptions::new().max_connections(Some(1)))
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        writeln!(conn, "{line}").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        BufReader::new(conn).read_line(&mut response).unwrap();
        response.trim_end().to_string()
    })
}

#[test]
fn cli_json_equals_serve_payload_for_1_2_8_workers() {
    let path = fixture_path();
    let mut payloads = Vec::new();
    for threads in [1usize, 2, 8] {
        // One-shot CLI.
        let cli_out = gtl_cli::run(&[
            "find".into(),
            path.clone(),
            "--seeds".into(),
            "10".into(),
            "--min-size".into(),
            "3".into(),
            "--max-order".into(),
            "10".into(),
            "--rng".into(),
            format!("{}", 0xDAC),
            "--threads".into(),
            threads.to_string(),
            "--json".into(),
        ])
        .unwrap();
        let cli_json = cli_out.trim_end().to_string();

        // Serve round-trip with the equivalent request.
        let session = Session::builder().load(&path).unwrap().build().unwrap();
        let line = serde::json::to_string(&Request::Find(FindRequest::new(config(threads))));
        let envelope = serve_round_trip(&session, &line);

        // The envelope is exactly {"Find":<payload>}, plus the per-
        // request trace stamp the server adds to v5 responses.
        assert!(envelope.contains(",\"trace\":\""), "v5 response untraced: {envelope}");
        let envelope = strip_trace(&envelope);
        let payload = envelope
            .strip_prefix("{\"Find\":")
            .and_then(|rest| rest.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unexpected envelope {envelope}"));
        assert_eq!(payload, cli_json, "serve payload != `gtl find --json` ({threads} workers)");
        payloads.push(cli_json);
    }
    assert!(payloads[0].contains("\"gtls\":[{"), "no GTLs found: {}", payloads[0]);
    assert_eq!(payloads[0], payloads[1], "2 workers changed the bytes");
    assert_eq!(payloads[0], payloads[2], "8 workers changed the bytes");
}

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Plays `lines` over one connection against a fresh server and returns
/// the response lines. `pipeline_depth(1)` keeps the replay serial, so
/// registry administration ordering is part of the contract.
fn replay_script(session: &Session, options: ServeOptions, lines: &[String]) -> Vec<String> {
    let listener = gtl_api::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = options.pipeline_depth(1).max_connections(Some(1));
    std::thread::scope(|scope| {
        let server = scope.spawn(|| gtl_api::serve(session, &listener, &options).unwrap());
        let mut conn = TcpStream::connect(addr).unwrap();
        for line in lines {
            writeln!(conn, "{line}").unwrap();
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let got: Vec<String> = BufReader::new(conn).lines().map(|l| l.unwrap()).collect();
        server.join().unwrap();
        got
    })
}

/// The v1 golden stays frozen: replaying the checked-in request line
/// through a current server reproduces the checked-in response bytes —
/// the same contract the CI `/dev/tcp` golden step enforces, runnable
/// locally via `cargo test`.
#[test]
fn golden_v1_find_replay_is_frozen() {
    let request = std::fs::read_to_string(golden_dir().join("serve_find_request.json")).unwrap();
    let expected = std::fs::read_to_string(golden_dir().join("serve_find_response.json")).unwrap();
    let session = Session::builder().load(&fixture_path()).unwrap().build().unwrap();
    let got = replay_script(&session, ServeOptions::new().lanes(2), &[request.trim().to_string()]);
    assert_eq!(got, vec![expected.trim_end().to_string()], "v1 golden bytes changed");
}

/// The v4 golden script: LoadNetlist → session-addressed Find →
/// ListSessions → UnloadNetlist. Checked-in request *and* response
/// bytes both stay frozen; `GTL_BLESS=1` regenerates them.
#[test]
fn golden_v4_session_script_replay() {
    let find_config = FinderConfig {
        num_seeds: 10,
        max_order_len: 10,
        lambda_threshold: 20,
        criterion: GrowthCriterion::WeightFirst,
        metric: MetricKind::GtlSd,
        min_size: 3,
        accept_threshold: 0.9,
        prominence: 1.2,
        max_fraction: 0.5,
        refine_seeds: 3,
        refine: true,
        threads: 2,
        rng_seed: 3500,
        rent_exponent: None,
    };
    let mut find = FindRequest::new(find_config);
    find.session = Some("alt".to_string());
    // Pinned to v4: this script freezes the pre-trace wire (constructors
    // now default to v5, which the v5 golden below covers).
    find.v = 4;
    let mut load = LoadNetlistRequest::new("alt", "two_cliques.hgr");
    load.v = 4;
    let mut list = ListSessionsRequest::new();
    list.v = 4;
    let mut unload = UnloadNetlistRequest::new("alt");
    unload.v = 4;
    let script = vec![
        serde::json::to_string(&Request::LoadNetlist(load)),
        serde::json::to_string(&Request::Find(find)),
        serde::json::to_string(&Request::ListSessions(list)),
        serde::json::to_string(&Request::UnloadNetlist(unload)),
    ];
    let session = Session::builder().load(&fixture_path()).unwrap().build().unwrap();
    let options = ServeOptions::new().lanes(2).max_netlists(4).netlist_dir(Some(golden_dir()));
    let got = replay_script(&session, options, &script);
    assert_eq!(got.len(), script.len(), "{got:?}");

    let requests_path = golden_dir().join("serve_session_requests.json");
    let responses_path = golden_dir().join("serve_session_responses.json");
    let render = |lines: &[String]| lines.join("\n") + "\n";
    if std::env::var("GTL_BLESS").is_ok() {
        std::fs::write(&requests_path, render(&script)).unwrap();
        std::fs::write(&responses_path, render(&got)).unwrap();
        return;
    }
    let requests = std::fs::read_to_string(&requests_path).unwrap();
    assert_eq!(requests, render(&script), "v4 golden request bytes changed");
    let responses = std::fs::read_to_string(&responses_path).unwrap();
    assert_eq!(responses, render(&got), "v4 golden response bytes changed");
}

/// The v5 golden script: the same session-administration shape as the
/// v4 golden, but at the current protocol version — every response line
/// carries its deterministic `(connection, sequence)` trace stamp, and
/// those stamped bytes are what's frozen. `GTL_BLESS=1` regenerates.
///
/// `MetricsText` is deliberately absent: its payload reports live
/// counters and latency buckets, which are not byte-stable across runs.
/// Its rendering is frozen separately in `tests/golden/metrics.prom`
/// (zeroed/fixed counters), and the scrape endpoint is exercised
/// structurally below and in CI.
#[test]
fn golden_v5_traced_script_replay() {
    let find_config = FinderConfig {
        num_seeds: 10,
        max_order_len: 10,
        lambda_threshold: 20,
        criterion: GrowthCriterion::WeightFirst,
        metric: MetricKind::GtlSd,
        min_size: 3,
        accept_threshold: 0.9,
        prominence: 1.2,
        max_fraction: 0.5,
        refine_seeds: 3,
        refine: true,
        threads: 2,
        rng_seed: 3500,
        rent_exponent: None,
    };
    let mut find = FindRequest::new(find_config);
    find.session = Some("alt".to_string());
    let script = vec![
        serde::json::to_string(&Request::LoadNetlist(LoadNetlistRequest::new(
            "alt",
            "two_cliques.hgr",
        ))),
        serde::json::to_string(&Request::Find(find)),
        serde::json::to_string(&Request::ListSessions(ListSessionsRequest::new())),
        serde::json::to_string(&Request::UnloadNetlist(UnloadNetlistRequest::new("alt"))),
    ];
    let session = Session::builder().load(&fixture_path()).unwrap().build().unwrap();
    let options = ServeOptions::new().lanes(2).max_netlists(4).netlist_dir(Some(golden_dir()));
    let got = replay_script(&session, options, &script);
    assert_eq!(got.len(), script.len(), "{got:?}");
    // Trace IDs are a pure function of (connection, sequence): one
    // connection (id 1), requests numbered from 0 — so the stamps are
    // reproducible bytes, fit to freeze.
    for (seq, line) in got.iter().enumerate() {
        let stamp = format!(",\"trace\":\"00000001-{seq:08x}\"}}}}");
        assert!(line.ends_with(&stamp), "line {seq} missing trace stamp: {line}");
    }

    let requests_path = golden_dir().join("serve_v5_requests.json");
    let responses_path = golden_dir().join("serve_v5_responses.json");
    let render = |lines: &[String]| lines.join("\n") + "\n";
    if std::env::var("GTL_BLESS").is_ok() {
        std::fs::write(&requests_path, render(&script)).unwrap();
        std::fs::write(&responses_path, render(&got)).unwrap();
        return;
    }
    let requests = std::fs::read_to_string(&requests_path).unwrap();
    assert_eq!(requests, render(&script), "v5 golden request bytes changed");
    let responses = std::fs::read_to_string(&responses_path).unwrap();
    assert_eq!(responses, render(&got), "v5 golden response bytes changed");
}

/// The scrape payload over the v5 wire: `MetricsText` returns the
/// Prometheus rendering as a JSON string field, end to end over TCP.
#[test]
fn metrics_text_round_trips_over_tcp() {
    let session = Session::builder().load(&fixture_path()).unwrap().build().unwrap();
    let line = serve_round_trip(&session, "{\"MetricsText\":{\"v\":5}}");
    assert!(line.starts_with("{\"MetricsText\":{\"v\":5,\"text\":\""), "{line}");
    assert!(line.contains("# TYPE gtl_requests counter"), "{line}");
    assert!(line.contains(",\"trace\":\"00000001-00000000\"}}"), "{line}");
}

#[test]
fn serve_stats_and_errors_over_tcp() {
    let path = fixture_path();
    let session = Session::builder().load(&path).unwrap().build().unwrap();
    let stats = serve_round_trip(&session, "{\"Stats\":{\"v\":1}}");
    assert!(stats.contains("\"num_cells\":10"), "{stats}");
    let err = serve_round_trip(&session, "{\"Find\":{\"v\":99,\"config\":{}}}");
    assert!(err.contains("\"code\":\"bad_request\""), "{err}");
    let err = serve_round_trip(&session, "{\"Nope\":{}}");
    assert!(err.contains("unknown variant"), "{err}");
}
