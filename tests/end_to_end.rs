//! Cross-crate integration tests: generator → finder → evaluation, and
//! the file-format paths into the finder.

use tangled_logic::netlist::{bookshelf, hgr, verilog, CellSet, NetlistBuilder, SubsetStats};
use tangled_logic::synth::planted::{self, PlantedConfig};
use tangled_logic::synth::structures;
use tangled_logic::tangled::{match_gtls, FinderConfig, MetricKind, TangledLogicFinder};

fn small_planted() -> tangled_logic::synth::GeneratedCircuit {
    planted::generate(&PlantedConfig {
        num_cells: 4_000,
        blocks: vec![250, 600],
        seed: 77,
        ..PlantedConfig::default()
    })
}

fn finder_config() -> FinderConfig {
    FinderConfig {
        num_seeds: 48,
        max_order_len: 1_600,
        min_size: 60,
        rng_seed: 5,
        ..FinderConfig::default()
    }
}

#[test]
fn planted_structures_recovered_end_to_end() {
    let g = small_planted();
    let result = TangledLogicFinder::new(&g.netlist, finder_config()).run();
    let found: Vec<Vec<_>> = result.gtls.iter().map(|x| x.cells.clone()).collect();
    let report = match_gtls(&g.truth, &found, g.netlist.num_cells());
    assert!(report.all_found(), "missed {:?}", report.missed_truths);
    assert!(report.max_miss_pct() < 5.0);
    assert!(report.max_over_pct() < 10.0);
}

#[test]
fn both_metrics_recover_the_same_structures() {
    let g = small_planted();
    for metric in [MetricKind::NGtlScore, MetricKind::GtlSd] {
        let config = FinderConfig { metric, ..finder_config() };
        let result = TangledLogicFinder::new(&g.netlist, config).run();
        let found: Vec<Vec<_>> = result.gtls.iter().map(|x| x.cells.clone()).collect();
        let report = match_gtls(&g.truth, &found, g.netlist.num_cells());
        assert!(report.all_found(), "{metric:?} missed {:?}", report.missed_truths);
    }
}

#[test]
fn finder_result_gtls_are_disjoint_and_scored() {
    let g = small_planted();
    let result = TangledLogicFinder::new(&g.netlist, finder_config()).run();
    let mut covered = CellSet::new(g.netlist.num_cells());
    for gtl in &result.gtls {
        assert!(gtl.score.is_finite() && gtl.score > 0.0);
        assert!(gtl.ngtl_score.is_finite() && gtl.gtl_sd.is_finite());
        // Reported stats must match an exact recomputation.
        let set = CellSet::from_cells(g.netlist.num_cells(), gtl.cells.iter().copied());
        let stats = SubsetStats::compute(&g.netlist, &set);
        assert_eq!(stats, gtl.stats);
        for &c in &gtl.cells {
            assert!(covered.insert(c), "cell {c} in two GTLs");
        }
    }
}

#[test]
fn hgr_roundtrip_preserves_finder_output() {
    let g = small_planted();
    let text = hgr::to_string(&g.netlist);
    let reparsed = hgr::parse_str(&text).expect("hgr parse");
    let a = TangledLogicFinder::new(&g.netlist, finder_config()).run();
    let b = TangledLogicFinder::new(&reparsed, finder_config()).run();
    assert_eq!(a.gtls.len(), b.gtls.len());
    for (x, y) in a.gtls.iter().zip(&b.gtls) {
        assert_eq!(x.cells, y.cells);
    }
}

#[test]
fn bookshelf_roundtrip_preserves_connectivity() {
    let g = small_planted();
    let n = g.netlist.num_cells();
    let design = bookshelf::BookshelfDesign {
        widths: vec![1.0; n],
        heights: vec![1.0; n],
        fixed: vec![false; n],
        positions: None,
        rows: Vec::new(),
        netlist: g.netlist.clone(),
    };
    let dir = std::env::temp_dir().join("gtl_e2e_bookshelf");
    bookshelf::write_design(&design, &dir, "e2e").expect("write");
    let loaded = bookshelf::read_aux(dir.join("e2e.aux")).expect("read");
    assert_eq!(loaded.netlist.num_cells(), g.netlist.num_cells());
    assert_eq!(loaded.netlist.num_nets(), g.netlist.num_nets());
    assert_eq!(loaded.netlist.num_pins(), g.netlist.num_pins());
    loaded.netlist.validate().expect("valid netlist");
}

#[test]
fn verilog_adder_is_detected_as_tangled() {
    // Emit a gate-level carry-chain adder as structural Verilog, parse it
    // back, and check the finder flags it inside a sparse wrapper. (A
    // pure fanout plane like a single-level decoder is *not* detectable
    // by the paper's weight function, which discounts high-fanout nets —
    // synthesized tangles are dominated by 2–3 pin nets like these.)
    let bits = 16usize;
    let mut src = String::from("module wrap ();\n");
    for i in 0..bits {
        src.push_str(&format!("  wire p{i}, g{i}, t{i}, c{i};\n"));
    }
    for i in 0..200 {
        src.push_str(&format!("  wire w{i};\n"));
    }
    for i in 0..bits {
        // Per-bit gates: propagate XOR, generate AND, carry AOI.
        src.push_str(&format!("  XOR2 x{i} (.Y(p{i}), .B(t{i}));\n"));
        src.push_str(&format!("  AND2 a{i} (.Y(g{i}), .B(t{i}));\n"));
        if i > 0 {
            src.push_str(&format!(
                "  AOI21 k{i} (.A(p{i}), .B(g{i}), .C(c{}), .Y(c{i}));\n",
                i - 1
            ));
        } else {
            src.push_str(&format!("  AOI21 k{i} (.A(p{i}), .B(g{i}), .Y(c{i}));\n"));
        }
    }
    // Sparse filler gates on a scrambled ring.
    for i in 0..200 {
        src.push_str(&format!("  BUF f{i} (.A(w{i}), .Y(w{}));\n", (i * 7 + 3) % 200));
    }
    src.push_str(&format!("  BUF tie (.A(c{}), .Y(w0));\nendmodule\n", bits - 1));

    let module = verilog::parse_str(&src).expect("parse verilog");
    assert_eq!(module.netlist.num_cells(), 3 * bits + 200 + 1);
    let config = FinderConfig {
        num_seeds: 60,
        max_order_len: 150,
        min_size: 10,
        rng_seed: 2,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(&module.netlist, config).run();
    assert!(!result.gtls.is_empty(), "adder not detected");
    let best = &result.gtls[0];
    // The best GTL is (mostly) adder gates (named x*, a*, k*).
    let adder_cells = best
        .cells
        .iter()
        .filter(|&&c| {
            let name = module.netlist.cell_name(c);
            name.starts_with('x') || name.starts_with('a') || name.starts_with('k')
        })
        .count();
    assert!(
        adder_cells * 10 >= best.len() * 8,
        "best GTL is only {adder_cells}/{} adder cells",
        best.len()
    );
}

#[test]
fn structure_macros_are_strong_gtls_by_score() {
    // Every structure macro embedded in a sparse background scores ≪ 1.
    type Builder = Box<dyn Fn(&mut NetlistBuilder) -> structures::StructureCells>;
    let builders: Vec<(&str, Builder)> = vec![
        ("adder", Box::new(|b| structures::ripple_carry_adder(b, 32))),
        ("decoder", Box::new(|b| structures::decoder(b, 6))),
        ("mux", Box::new(|b| structures::mux_tree(b, 7))),
        ("mult", Box::new(|b| structures::multiplier_array(b, 8))),
    ];
    for (name, build) in builders {
        let mut b = NetlistBuilder::new();
        let s = build(&mut b);
        let first_bg = b.num_cells();
        b.add_anonymous_cells(500);
        for i in 0..500usize {
            let a = tangled_logic::netlist::CellId::new(first_bg + i);
            let c = tangled_logic::netlist::CellId::new(first_bg + (i * 13 + 7) % 500);
            if a != c {
                b.add_anonymous_net([a, c]);
            }
        }
        // One bridge.
        b.add_anonymous_net([s.cells[0], tangled_logic::netlist::CellId::new(first_bg)]);
        let nl = b.finish();
        let set = CellSet::from_cells(nl.num_cells(), s.cells.iter().copied());
        let stats = SubsetStats::compute(&nl, &set);
        let ctx = tangled_logic::tangled::DesignContext::new(&nl, 0.6);
        let score = tangled_logic::tangled::metrics::ngtl_score(stats.cut, stats.size, &ctx);
        assert!(score < 0.35, "{name}: score {score}");
    }
}
