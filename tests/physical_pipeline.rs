//! Integration tests for the physical-design pipeline: synth → place →
//! legalize → congestion → inflate.

use tangled_logic::place::congestion::{estimate, DemandModel, RoutingConfig};
use tangled_logic::place::inflate::run_inflation_flow;
use tangled_logic::place::legal::legalize;
use tangled_logic::place::spread::DensityMap;
use tangled_logic::place::{hpwl, place, Die, PlacerConfig};
use tangled_logic::synth::industrial::{self, IndustrialConfig};
use tangled_logic::synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};

fn circuit() -> tangled_logic::synth::GeneratedCircuit {
    generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec1, 0.005))
}

#[test]
fn placement_pipeline_produces_legal_low_hpwl_result() {
    let g = circuit();
    let die = Die::for_netlist(&g.netlist, 0.6);
    let global = place(&g.netlist, &die, &PlacerConfig::default());

    // HPWL sanity: far better than a uniform random placement.
    let n = g.netlist.num_cells();
    let random = tangled_logic::place::Placement::from_coords(
        (0..n).map(|i| (i as f64 * 0.61803) % die.width).collect(),
        (0..n).map(|i| (i as f64 * std::f64::consts::FRAC_1_PI) % die.height).collect(),
    );
    assert!(hpwl(&g.netlist, &global) < 0.7 * hpwl(&g.netlist, &random));

    // Legalization: everything in rows, low overflow.
    let legal = legalize(&g.netlist, &global, &die);
    assert!(legal.overflowed < n / 100, "{} of {} cells overflowed", legal.overflowed, n);
    let row_h = die.row_height();
    for c in g.netlist.cells() {
        let (x, y) = legal.placement.position(c);
        assert!(x >= -1e-9 && x <= die.width + 1e-9);
        let row = (y / row_h).round();
        assert!((y - row * row_h).abs() < 1e-9, "cell {c} not on a row");
    }

    // Density stays bounded after legalization.
    let density = DensityMap::compute(&g.netlist, &legal.placement, &die, 8);
    assert!(density.max_utilization() < 2.0, "peak density {}", density.max_utilization());
}

#[test]
fn congestion_models_agree_on_hotspot_location() {
    let g = circuit();
    let die = Die::for_netlist(&g.netlist, 0.6);
    let p = place(&g.netlist, &die, &PlacerConfig::default());
    let rudy = estimate(
        &g.netlist,
        &p,
        &die,
        &RoutingConfig { tiles: 12, model: DemandModel::Rudy, ..RoutingConfig::default() },
    );
    let lshape = estimate(
        &g.netlist,
        &p,
        &die,
        &RoutingConfig { tiles: 12, model: DemandModel::LShape, ..RoutingConfig::default() },
    );
    // The two models must correlate: compare tile rankings coarsely.
    let a = rudy.to_grid();
    let b = lshape.to_grid();
    let rank = |g: &[f64]| {
        let mut idx: Vec<usize> = (0..g.len()).collect();
        idx.sort_by(|&x, &y| g[y].total_cmp(&g[x]));
        idx.truncate(g.len() / 4);
        idx
    };
    let top_a = rank(&a);
    let top_b = rank(&b);
    let overlap = top_a.iter().filter(|i| top_b.contains(i)).count();
    assert!(
        overlap * 2 >= top_a.len(),
        "models disagree: only {overlap}/{} shared hot tiles",
        top_a.len()
    );
}

#[test]
fn inflation_flow_invariants() {
    let circuit =
        industrial::generate(&IndustrialConfig { scale: 0.005, ..IndustrialConfig::default() });
    let blob_cells: Vec<_> = circuit.truth.iter().flat_map(|b| b.iter().copied()).collect();
    // Same calibration as the gtl-place inflation unit test: fine tiles
    // and loose capacity keep the background below 100% so only the
    // packed-blob hotspot is overfull before inflation.
    let routing = RoutingConfig { tiles: 48, target_mean: 0.37, ..RoutingConfig::default() };
    let outcome = run_inflation_flow(
        &circuit.netlist,
        &blob_cells,
        4.0,
        0.35,
        &PlacerConfig::default(),
        &routing,
    );
    // Shared die and frozen capacities.
    assert_eq!(outcome.baseline_map.tiles(), outcome.inflated_map.tiles());
    assert_eq!(outcome.baseline_map.h_capacity(), outcome.inflated_map.h_capacity());
    // The original netlist is untouched (the flow clones internally).
    let area: f64 = blob_cells.iter().map(|&c| circuit.netlist.cell_area(c)).sum();
    assert!((area - blob_cells.len() as f64).abs() < 1e-9, "areas mutated");
    // Relief direction.
    assert!(outcome.after.max_utilization <= outcome.before.max_utilization);
    assert!(outcome.reduction_100pct() >= 1.0);
}

#[test]
fn placer_is_deterministic_across_runs() {
    let g = circuit();
    let die = Die::for_netlist(&g.netlist, 0.6);
    let a = place(&g.netlist, &die, &PlacerConfig::default());
    let b = place(&g.netlist, &die, &PlacerConfig::default());
    assert_eq!(a, b);
}
