//! Property-based tests (proptest) on the core data structures and the
//! algorithmic invariants that the whole reproduction rests on.

use proptest::prelude::*;
use tangled_logic::netlist::{hgr, CellId, CellSet, Netlist, NetlistBuilder, SubsetStats};
use tangled_logic::tangled::candidate::{extract_candidate, CandidateConfig};
use tangled_logic::tangled::metrics::{self, DesignContext};
use tangled_logic::tangled::prune::prune_overlapping;
use tangled_logic::tangled::{GrowthConfig, OrderingGrower};

/// Strategy: a random netlist with up to `max_cells` cells and nets of
/// 2..=5 pins drawn from them.
fn arb_netlist(max_cells: usize, max_nets: usize) -> impl Strategy<Value = Netlist> {
    (2..max_cells, 1..max_nets).prop_flat_map(move |(cells, nets)| {
        proptest::collection::vec(proptest::collection::vec(0..cells, 2..=5usize), nets..=nets)
            .prop_map(move |net_pins| {
                let mut b = NetlistBuilder::new();
                b.add_anonymous_cells(cells);
                for pins in net_pins {
                    b.add_anonymous_net(pins.into_iter().map(CellId::new));
                }
                b.finish()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two CSR directions always agree, pins are deduplicated, and the
    /// pin count is consistent.
    #[test]
    fn netlist_structure_is_consistent(nl in arb_netlist(40, 60)) {
        prop_assert!(nl.validate().is_ok());
        let by_cells: usize = nl.cells().map(|c| nl.cell_degree(c)).sum();
        let by_nets: usize = nl.nets().map(|n| nl.net_degree(n)).sum();
        prop_assert_eq!(by_cells, nl.num_pins());
        prop_assert_eq!(by_nets, nl.num_pins());
    }

    /// hgr serialization round-trips connectivity exactly.
    #[test]
    fn hgr_roundtrip(nl in arb_netlist(30, 40)) {
        let text = hgr::to_string(&nl);
        let again = hgr::parse_str(&text).unwrap();
        prop_assert_eq!(again.num_cells(), nl.num_cells());
        prop_assert_eq!(again.num_nets(), nl.num_nets());
        for net in nl.nets() {
            prop_assert_eq!(again.net_cells(net), nl.net_cells(net));
        }
    }

    /// CellSet algebra obeys the usual set laws.
    #[test]
    fn cellset_algebra(
        a in proptest::collection::hash_set(0usize..200, 0..40),
        b in proptest::collection::hash_set(0usize..200, 0..40),
    ) {
        let sa = CellSet::from_cells(200, a.iter().map(|&i| CellId::new(i)));
        let sb = CellSet::from_cells(200, b.iter().map(|&i| CellId::new(i)));
        let union = sa.union(&sb);
        let inter = sa.intersection(&sb);
        let diff = sa.difference(&sb);
        prop_assert_eq!(union.len(), a.union(&b).count());
        prop_assert_eq!(inter.len(), a.intersection(&b).count());
        prop_assert_eq!(diff.len(), a.difference(&b).count());
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        prop_assert_eq!(sa.len() + sb.len(), union.len() + inter.len());
        // A \ B and B are disjoint; their union is A ∪ B.
        prop_assert!(diff.is_disjoint(&sb));
        prop_assert_eq!(diff.union(&sb).len(), union.len());
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());
    }

    /// The incremental per-prefix profiles of a Phase I ordering equal an
    /// exact recomputation via SubsetStats — the key algorithmic invariant
    /// of the fast grower.
    #[test]
    fn ordering_profiles_match_exact_recomputation(nl in arb_netlist(30, 50)) {
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        let ordering = grower.grow(CellId::new(0));
        for k in 0..ordering.len() {
            let set = CellSet::from_cells(nl.num_cells(), ordering.cells()[..=k].iter().copied());
            let exact = SubsetStats::compute(&nl, &set);
            prop_assert_eq!(exact, ordering.stats_at(k), "prefix {}", k);
        }
    }

    /// Growth never repeats a cell, and every non-seed cell is connected
    /// to the prefix before it (frontier property).
    #[test]
    fn ordering_is_connected_and_duplicate_free(nl in arb_netlist(30, 50)) {
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        let ordering = grower.grow(CellId::new(1.min(nl.num_cells() - 1)));
        let mut seen = CellSet::new(nl.num_cells());
        for (k, &cell) in ordering.cells().iter().enumerate() {
            prop_assert!(seen.insert(cell), "cell repeated");
            if k > 0 {
                let connected = nl.cell_nets(cell).iter().any(|&net| {
                    nl.net_cells(net).iter().any(|&u| u != cell && seen.contains(u))
                });
                prop_assert!(connected, "cell {} not connected to prefix", cell);
            }
        }
    }

    /// Pruning returns score-sorted, pairwise-disjoint candidates, and
    /// never invents or duplicates cells.
    #[test]
    fn pruning_invariants(
        groups in proptest::collection::vec(
            (proptest::collection::hash_set(0usize..100, 1..20), 0.0f64..2.0),
            0..12,
        )
    ) {
        let candidates: Vec<_> = groups
            .iter()
            .map(|(cells, score)| {
                // `prune_overlapping` requires canonical (sorted) lists.
                let mut cells: Vec<CellId> = cells.iter().map(|&i| CellId::new(i)).collect();
                cells.sort_unstable();
                tangled_logic::tangled::Candidate {
                    cells,
                    stats: SubsetStats::default(),
                    score: *score,
                    rent_exponent: 0.6,
                    minimum_index: 0,
                }
            })
            .collect();
        let kept = prune_overlapping(candidates, 100);
        let mut covered = CellSet::new(100);
        let mut last = f64::NEG_INFINITY;
        for c in &kept {
            prop_assert!(c.score >= last);
            last = c.score;
            for &cell in &c.cells {
                prop_assert!(covered.insert(cell), "overlapping GTLs kept");
            }
        }
    }

    /// nGTL-S is scale-fair: multiplying size and Rent-consistent cut
    /// together leaves the score unchanged (up to rounding).
    #[test]
    fn ngtl_score_is_size_fair(
        size in 50usize..5_000,
        factor in 2usize..8,
        p in 0.4f64..0.8,
    ) {
        let ctx = DesignContext { avg_pins_per_cell: 4.0, rent_exponent: p };
        let cut_small = 4.0 * (size as f64).powf(p);
        let cut_large = 4.0 * ((size * factor) as f64).powf(p);
        let s_small = metrics::ngtl_score(cut_small.round() as usize, size, &ctx);
        let s_large = metrics::ngtl_score(cut_large.round() as usize, size * factor, &ctx);
        prop_assert!((s_small - s_large).abs() < 0.05, "{} vs {}", s_small, s_large);
    }

    /// Bookshelf write/read round-trips connectivity and areas for any
    /// generated netlist.
    #[test]
    fn bookshelf_roundtrip(nl in arb_netlist(25, 30), case in 0u64..1_000_000) {
        use tangled_logic::netlist::bookshelf::{self, BookshelfDesign};
        let n = nl.num_cells();
        let design = BookshelfDesign {
            widths: (0..n).map(|i| 1.0 + (i % 5) as f64).collect(),
            heights: vec![1.0; n],
            fixed: (0..n).map(|i| i % 7 == 0).collect(),
            positions: Some((0..n).map(|i| (i as f64, (i * 2) as f64)).collect()),
            rows: Vec::new(),
            netlist: {
                // Rebuild with areas = width × height so the parser's
                // area reconstruction can be checked exactly.
                let mut b = NetlistBuilder::new();
                for i in 0..n {
                    b.add_cell(format!("cell_{i}"), 1.0 + (i % 5) as f64);
                }
                for net in nl.nets() {
                    b.add_net(format!("net_{}", net.index()), nl.net_cells(net).iter().copied());
                }
                b.finish()
            },
        };
        let dir = std::env::temp_dir().join(format!("gtl_prop_bookshelf_{case}"));
        bookshelf::write_design(&design, &dir, "prop").unwrap();
        let loaded = bookshelf::read_aux(dir.join("prop.aux")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(loaded.netlist.num_cells(), n);
        prop_assert_eq!(loaded.netlist.num_nets(), nl.num_nets());
        prop_assert_eq!(loaded.netlist.num_pins(), nl.num_pins());
        for i in 0..n {
            let c = CellId::new(i);
            prop_assert!((loaded.netlist.cell_area(c) - design.netlist.cell_area(c)).abs() < 1e-9);
            prop_assert_eq!(loaded.fixed[i], i % 7 == 0);
        }
    }

    /// Verilog writer round-trips per-cell degrees for any netlist whose
    /// nets are non-empty.
    #[test]
    fn verilog_writer_roundtrip(nl in arb_netlist(20, 25)) {
        use tangled_logic::netlist::verilog;
        let text = verilog::to_module_string(&nl, "prop", None);
        let again = verilog::parse_str(&text).unwrap();
        prop_assert_eq!(again.netlist.num_cells(), nl.num_cells());
        prop_assert_eq!(again.netlist.num_pins(), nl.num_pins());
        for c in nl.cells() {
            prop_assert_eq!(again.netlist.cell_degree(c), nl.cell_degree(c));
        }
    }

    /// Candidate extraction never returns a group outside its configured
    /// size window or above the acceptance threshold.
    #[test]
    fn candidate_respects_config(nl in arb_netlist(40, 80)) {
        let mut grower = OrderingGrower::new(&nl, GrowthConfig::default());
        let ordering = grower.grow(CellId::new(0));
        let config = CandidateConfig {
            min_size: 3,
            max_size: 20,
            accept_threshold: 0.8,
            ..CandidateConfig::default()
        };
        if let Some(c) = extract_candidate(&ordering, nl.avg_pins_per_cell(), &config) {
            prop_assert!(c.cells.len() >= 3 && c.cells.len() <= 20);
            prop_assert!(c.score < 0.8);
            prop_assert!(c.stats.cut > 0);
        }
    }
}
