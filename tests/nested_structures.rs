//! The paper's "structures within structures" claim (Chapter I):
//!
//! > *"Our metrics and algorithm are able to decide whether we should
//! > choose several smaller GTLs or a much larger GTL which encompasses
//! > all the smaller ones."*
//!
//! Two scenarios with identical nested shape but different boundaries:
//! when the enclosing region itself has a tiny cut, the one big GTL wins
//! (it scores lower — same cut, bigger size); when the enclosing region is
//! leaky, the finder must return the two dense sub-blocks instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tangled_logic::netlist::{CellId, Netlist, NetlistBuilder};
use tangled_logic::tangled::{FinderConfig, TangledLogicFinder};

/// Builds: background (1000 cells) + region R of 200 cells containing two
/// 40-cell dense sub-blocks. `region_boundary_nets` controls how leaky R
/// is toward the background.
fn nested(region_boundary_nets: usize, seed: u64) -> (Netlist, Vec<CellId>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new();
    let total = 1_200usize;
    b.add_anonymous_cells(total);
    let id = CellId::new;
    // Region R = cells 0..200; sub-blocks A = 0..40, B = 40..80.
    for (lo, hi, nets_per_cell) in [(0usize, 40usize, 4usize), (40, 80, 4)] {
        for _ in 0..(hi - lo) * nets_per_cell {
            let i = lo + rng.gen_range(0..hi - lo);
            let j = lo + rng.gen_range(0..hi - lo);
            if i != j {
                b.add_anonymous_net([id(i), id(j)]);
            }
        }
        for k in lo..hi - 1 {
            b.add_anonymous_net([id(k), id(k + 1)]);
        }
    }
    // Rest of R: light internal wiring + links to the sub-blocks.
    for k in 80..199 {
        b.add_anonymous_net([id(k), id(k + 1)]);
    }
    for _ in 0..60 {
        let inside = rng.gen_range(0..80);
        let outside = 80 + rng.gen_range(0..120usize);
        b.add_anonymous_net([id(inside), id(outside)]);
    }
    // R boundary to the background.
    for _ in 0..region_boundary_nets {
        let inside = 80 + rng.gen_range(0..120usize);
        let outside = 200 + rng.gen_range(0..1000usize);
        b.add_anonymous_net([id(inside), id(outside)]);
    }
    // Background wiring.
    for k in 200..total {
        for _ in 0..2 {
            let j = 200 + rng.gen_range(0..1000usize);
            if j != k {
                b.add_anonymous_net([id(k), id(j)]);
            }
        }
    }
    (b.finish(), (0..total).map(id).collect())
}

fn run_finder(nl: &Netlist) -> tangled_logic::tangled::FinderResult {
    let config = FinderConfig {
        num_seeds: 80,
        max_order_len: 500,
        min_size: 20,
        rng_seed: 9,
        ..FinderConfig::default()
    };
    TangledLogicFinder::new(nl, config).run()
}

#[test]
fn tight_region_wins_as_one_big_gtl() {
    // R has only 4 boundary nets: the 200-cell region scores better than
    // either 40-cell sub-block (same-order cut, 5× the size).
    let (nl, _) = nested(4, 1);
    let result = run_finder(&nl);
    assert!(!result.gtls.is_empty());
    let best = &result.gtls[0];
    assert!(
        best.len() >= 150,
        "expected the encompassing region (~200 cells), got {} cells",
        best.len()
    );
    // It must cover both sub-blocks.
    let members: std::collections::HashSet<_> = best.cells.iter().collect();
    let a_covered = (0..40).filter(|&i| members.contains(&CellId::new(i))).count();
    let b_covered = (40..80).filter(|&i| members.contains(&CellId::new(i))).count();
    assert!(a_covered >= 36 && b_covered >= 36, "sub-blocks not encompassed");
}

#[test]
fn leaky_region_yields_the_sub_blocks() {
    // R leaks through 400 boundary nets: the region is no GTL at all, and
    // the two dense sub-blocks must be reported individually.
    let (nl, _) = nested(400, 2);
    let result = run_finder(&nl);
    // Collect GTLs that are mostly inside A and mostly inside B.
    let mut found_a = false;
    let mut found_b = false;
    for gtl in &result.gtls {
        let in_a = gtl.cells.iter().filter(|c| c.index() < 40).count();
        let in_b = gtl.cells.iter().filter(|c| (40..80).contains(&c.index())).count();
        if in_a * 10 >= gtl.len() * 9 && in_a >= 30 {
            found_a = true;
        }
        if in_b * 10 >= gtl.len() * 9 && in_b >= 30 {
            found_b = true;
        }
        assert!(
            gtl.len() < 150,
            "a leaky 200-cell region was reported as one GTL ({} cells, score {})",
            gtl.len(),
            gtl.score
        );
    }
    assert!(found_a && found_b, "sub-blocks not individually recovered (A {found_a}, B {found_b})");
}
