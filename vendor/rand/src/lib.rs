//! Vendored, offline subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small, dependency-free shim that implements exactly the surface
//! the reproduction uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator behind `SmallRng` is xoshiro256++ seeded through
//! SplitMix64 — the same family the real crate uses on 64-bit targets.
//! Streams are **not** bit-compatible with upstream `rand`; everything in
//! this workspace that depends on randomness is seeded explicitly and only
//! requires self-consistent determinism, which this shim guarantees: the
//! same seed always yields the same stream on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from an `RngCore` ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method
/// (with rejection, so the distribution is exactly uniform).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the widening multiply unbiased.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(bound);
        let low = wide as u64;
        if low >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole u64 domain: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution (`f64`/`f32`
    /// in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (stream is a pure function
    /// of the seed).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator seeded from another generator's output.
    fn from_rng<R: RngCore>(source: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(source.next_u64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
