//! Sequence helpers: the subset of upstream `rand::seq` used by this
//! workspace ([`SliceRandom::shuffle`] and [`SliceRandom::choose`]).

use crate::Rng;

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_empty_none() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v: Vec<u8> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }
}
