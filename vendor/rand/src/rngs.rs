//! Concrete generators. Only [`SmallRng`] is provided: a xoshiro256++
//! instance, the same family upstream `rand` 0.8 uses for `SmallRng` on
//! 64-bit targets (streams are not bit-compatible with upstream).

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

/// SplitMix64 step used to expand a 64-bit seed into full state, as
/// recommended by the xoshiro authors.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // xoshiro requires non-zero state; SplitMix64 expansion guarantees
        // it even for seed 0.
        let rng = SmallRng::seed_from_u64(0);
        assert!(rng.s.iter().any(|&w| w != 0));
    }

    #[test]
    fn clone_reproduces_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
