//! Offline, std-only replacement for the [`serde`](https://crates.io/crates/serde)
//! facade — *real* serialization, not the former marker-trait stub.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the surface the workspace needs end-to-end:
//!
//! * [`Serialize`] / [`Deserialize`] traits that convert through the
//!   self-describing [`Value`] tree (the moral equivalent of
//!   `serde_json::Value`);
//! * derive macros (re-exported from `serde_derive`) covering named-field
//!   structs, tuple/newtype structs and enums with unit, newtype and
//!   struct variants — externally tagged, like upstream serde's default;
//! * a strict JSON parser and a deterministic renderer in [`json`]
//!   (insertion-ordered keys, shortest round-trip floats), used by
//!   `gtl-api` wire messages, `gtl find --json` / `gtl serve`, and the
//!   bench reports.
//!
//! Differences from upstream: serialization always materializes a
//! [`Value`] (no streaming `Serializer` trait), `Deserialize`'s lifetime
//! parameter is vestigial (values are always owned), and only JSON is
//! provided as a text format. Swapping in the real crates later only
//! requires re-pointing `[workspace.dependencies]`.
//!
//! # Example
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Run {
//!     threads: usize,
//!     speedup: f64,
//!     tags: Vec<String>,
//! }
//!
//! let run = Run { threads: 8, speedup: 3.5, tags: vec!["ci".into()] };
//! let text = serde::json::to_string(&run);
//! assert_eq!(text, r#"{"threads":8,"speedup":3.5,"tags":["ci"]}"#);
//! assert_eq!(serde::json::from_str::<Run>(&text).unwrap(), run);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{from_field, variant, Value};

/// An error produced while deserializing (shape mismatches, JSON syntax
/// errors). Nested failures are prefixed with the field path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the self-describing [`Value`] tree.
///
/// Implemented for the primitives, `String`, `Option`, `Vec`, slices,
/// 2/3-tuples and references; `#[derive(Serialize)]` covers structs and
/// enums.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion back out of a [`Value`] tree.
///
/// The `'de` lifetime is kept for signature compatibility with upstream
/// serde bounds (`for<'de> Deserialize<'de>`); this implementation always
/// produces owned data.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::new(format!("expected bool, got {}", value.kind())))
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::new(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        value.kind()
                    ))
                })?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::new(format!(concat!("{} out of range for ", stringify!($ty)), raw))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::I64(v)
                } else {
                    Value::U64(v as u64)
                }
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::new(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        value.kind()
                    ))
                })?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::new(format!(concat!("{} out of range for ", stringify!($ty)), raw))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = value
            .as_u64()
            .ok_or_else(|| Error::new(format!("expected usize, got {}", value.kind())))?;
        usize::try_from(raw).map_err(|_| Error::new(format!("{raw} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl<'de> Deserialize<'de> for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(value)?;
        isize::try_from(raw).map_err(|_| Error::new(format!("{raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::new(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {}", value.kind())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_arr()
            .ok_or_else(|| Error::new(format!("expected array, got {}", value.kind())))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| Error::new(format!("[{i}]: {e}"))))
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A, B> Deserialize<'de> for (A, B)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::new(format!("expected 2-element array, got {}", value.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<'de, A, B, C> Deserialize<'de> for (A, B, C)
where
    A: for<'a> Deserialize<'a>,
    B: for<'a> Deserialize<'a>,
    C: for<'a> Deserialize<'a>,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::new(format!("expected 3-element array, got {}", value.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn range_checks() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(i8::from_value(&Value::I64(-200)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn error_paths_name_the_index() {
        let err =
            Vec::<u32>::from_value(&Value::arr([Value::U64(1), Value::Bool(true)])).unwrap_err();
        assert!(err.message().contains("[1]"), "{err}");
    }

    #[test]
    fn integers_keep_sign_variant() {
        // Non-negative signed values serialize as U64 so the rendered JSON
        // (and therefore the wire bytes) never depends on the Rust type.
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
    }
}
