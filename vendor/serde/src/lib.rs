//! Offline stub of the [`serde`](https://crates.io/crates/serde) facade.
//!
//! The workspace gates serde support behind a `serde` cargo feature and
//! only ever *derives* the traits — nothing in the tree performs actual
//! serialization (there is no `serde_json`). Because the build environment
//! has no access to crates.io, this stub provides just enough for those
//! `cfg_attr` derives to compile: marker traits plus no-op derive macros.
//!
//! If real serialization is ever needed, replace this stub with the real
//! crate (same package name and feature set).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; see crate docs).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; see crate docs).
pub trait Deserialize<'de> {}
