//! The self-describing [`Value`] tree every serialization passes through.
//!
//! [`Serialize`](crate::Serialize) turns a Rust value into a [`Value`];
//! the [`json`](crate::json) module renders and parses that tree. Keeping
//! the tree explicit (like `serde_json::Value`) lets callers build ad-hoc
//! documents — the bench reports do exactly that — while derived types get
//! lossless round-trips.

use crate::Error;

/// A JSON-compatible value tree.
///
/// Numbers keep their Rust flavor: integers serialize as [`Value::I64`] /
/// [`Value::U64`] and render without a decimal point, while floats
/// ([`Value::F64`]) always render with a `.` or exponent (Rust's shortest
/// round-trip representation), so parsing a rendered document restores the
/// exact variant *and* the exact bits. Non-finite floats render as `null`
/// (JSON has no literal for them).
///
/// # Example
///
/// ```
/// use serde::Value;
///
/// let doc = Value::obj([
///     ("bench", Value::str("finder_parallel")),
///     ("threads", Value::arr([Value::num(1.0), Value::num(8.0)])),
/// ]);
/// assert_eq!(doc.render(), r#"{"bench":"finder_parallel","threads":[1,8]}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (only produced for negative values by the parser).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A double. Rendered with `.` or exponent so it never collides with
    /// the integer variants on re-parse.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An object; key order is preserved (insertion order, stable render).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Numeric shorthand matching the old bench-report API: integral
    /// values within `±2^53` become integers, everything else [`Value::F64`].
    pub fn num(v: f64) -> Self {
        if v.fract() == 0.0 && v.abs() < 9e15 {
            if v.is_sign_negative() && v != 0.0 {
                Value::I64(v as i64)
            } else {
                Value::U64(v as u64)
            }
        } else {
            Value::F64(v)
        }
    }

    /// Shorthand for [`Value::Str`].
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Shorthand for [`Value::Arr`].
    pub fn arr(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Arr(items.into_iter().collect())
    }

    /// Shorthand for [`Value::Obj`].
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Self {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, converting from either integer variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64` (integers only; negative values are `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64` (integers only; out-of-range values are `None`).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Renders the value as compact JSON text (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    pub(crate) fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same bits; it always contains `.` or an
                    // exponent, keeping floats distinct from integers.
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no NaN/inf literals; null keeps the
                    // document parseable.
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Reads `name` out of an object and deserializes it — the helper the
/// derive macro expands field reads to.
///
/// A missing key is deserialized as [`Value::Null`]: `Option<T>` fields
/// may simply be absent from the document (how upstream serde treats
/// `#[serde(default)]` optionals — the behavior versioned wire contracts
/// need to add fields compatibly), while any non-nullable type still
/// reports the field as missing.
///
/// # Errors
///
/// Fails when `value` is not an object, the field is missing and not
/// nullable, or the field's own deserialization fails (the error is
/// prefixed with the field name to keep nested failures legible).
pub fn from_field<T>(value: &Value, type_name: &str, name: &str) -> Result<T, Error>
where
    T: for<'a> crate::Deserialize<'a>,
{
    let Value::Obj(_) = value else {
        return Err(Error::new(format!("{type_name}: expected object, got {}", value.kind())));
    };
    match value.get(name) {
        Some(field) => T::from_value(field).map_err(|e| Error::new(format!("{name}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::new(format!("{type_name}: missing field `{name}`"))),
    }
}

/// Splits an externally tagged enum value into `(variant, payload)` — the
/// helper the derive macro expands enum deserialization to.
///
/// A bare string is a unit variant; a single-entry object is a data
/// variant.
///
/// # Errors
///
/// Fails for any other shape.
pub fn variant<'v>(
    value: &'v Value,
    type_name: &str,
) -> Result<(&'v str, Option<&'v Value>), Error> {
    match value {
        Value::Str(name) => Ok((name, None)),
        Value::Obj(pairs) if pairs.len() == 1 => Ok((&pairs[0].0, Some(&pairs[0].1))),
        other => Err(Error::new(format!(
            "{type_name}: expected variant string or single-key object, got {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_optional_field_deserializes_as_none() {
        let obj = Value::obj([("a", Value::U64(1))]);
        // Optionals may be absent entirely (compatible field additions)…
        assert_eq!(from_field::<Option<u32>>(&obj, "T", "b").unwrap(), None);
        // …or explicitly null, with identical results…
        let with_null = Value::obj([("a", Value::U64(1)), ("b", Value::Null)]);
        assert_eq!(from_field::<Option<u32>>(&with_null, "T", "b").unwrap(), None);
        // …while non-nullable fields still report missing.
        let err = from_field::<u32>(&obj, "T", "b").unwrap_err();
        assert!(err.message().contains("missing field `b`"), "{err}");
    }

    #[test]
    fn num_splits_integers_and_floats() {
        assert_eq!(Value::num(3.0), Value::U64(3));
        assert_eq!(Value::num(-3.0), Value::I64(-3));
        assert_eq!(Value::num(1.5), Value::F64(1.5));
        assert_eq!(Value::num(1e300), Value::F64(1e300));
    }

    #[test]
    fn non_finite_renders_null() {
        let doc = Value::arr([Value::F64(f64::NAN), Value::F64(f64::INFINITY), Value::F64(1.5)]);
        assert_eq!(doc.render(), "[null,null,1.5]");
    }

    #[test]
    fn floats_always_render_with_point_or_exponent() {
        assert_eq!(Value::F64(5.0).render(), "5.0");
        assert_eq!(Value::F64(-0.0).render(), "-0.0");
        assert_eq!(Value::F64(1e300).render(), "1e300");
        assert_eq!(Value::U64(5).render(), "5");
    }

    #[test]
    fn string_escapes() {
        let v = Value::str("a\"b\\c\nd\te\r\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
    }

    #[test]
    fn get_and_accessors() {
        let v = Value::obj([("x", Value::num(1.0)), ("y", Value::Bool(true))]);
        assert_eq!(v.get("x").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("y").and_then(Value::as_bool), Some(true));
        assert!(v.get("z").is_none());
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::arr([Value::Null]).as_arr().map(<[Value]>::len), Some(1));
    }
}
