//! JSON text ⇄ [`Value`] ⇄ typed data.
//!
//! [`to_string`] and [`from_str`] are the typed entry points the rest of
//! the workspace uses (`gtl-api` wire messages, `gtl find --json`, bench
//! reports); [`parse`] exposes the untyped tree.
//!
//! The renderer is deterministic: object keys keep their insertion order
//! and floats use Rust's shortest round-trip representation, so equal
//! values always produce byte-identical documents — the property the
//! `gtl serve` determinism tests assert end-to-end.

use crate::{Deserialize, Error, Serialize, Value};

/// Maximum nesting depth accepted by the parser (guards hostile inputs —
/// `gtl serve` feeds it raw network bytes).
const MAX_DEPTH: usize = 128;

/// Serializes any [`Serialize`] type to compact JSON text.
///
/// # Example
///
/// ```
/// assert_eq!(serde::json::to_string(&vec![1u32, 2]), "[1,2]");
/// ```
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().render()
}

/// Serializes any [`Serialize`] type to compact JSON text appended onto
/// `out`, reusing the buffer's allocation (the caller clears it between
/// uses). Hot serve loops use this to avoid a fresh `String` per
/// response; the bytes produced are identical to [`to_string`].
///
/// # Example
///
/// ```
/// let mut buf = String::from("doc: ");
/// serde::json::to_string_into(&vec![1u32, 2], &mut buf);
/// assert_eq!(buf, "doc: [1,2]");
/// ```
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) {
    value.to_value().render_into(out);
}

/// Deserializes any [`Deserialize`] type from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape mismatch.
///
/// # Example
///
/// ```
/// let v: Vec<u32> = serde::json::from_str("[1,2]").unwrap();
/// assert_eq!(v, [1, 2]);
/// ```
pub fn from_str<T: for<'a> Deserialize<'a>>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Strict on structure (single document, no trailing garbage, depth cap)
/// and lossless on numbers: integer literals become [`Value::I64`] /
/// [`Value::U64`], everything with a `.` or exponent becomes
/// [`Value::F64`].
///
/// # Errors
///
/// Returns an [`Error`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl std::fmt::Display) -> Error {
        Error::new(format!("json at byte {}: {}", self.pos, message))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal (expected `{text}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        // Surrogate pair: a second \uXXXX must follow.
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if digits.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("json at byte {start}: invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("1e300").unwrap(), Value::F64(1e300));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn large_integers_stay_exact() {
        assert_eq!(parse(&u64::MAX.to_string()).unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse(&i64::MIN.to_string()).unwrap(), Value::I64(i64::MIN));
        // Wider than u64 falls back to f64.
        assert!(matches!(parse("99999999999999999999999").unwrap(), Value::F64(_)));
    }

    #[test]
    fn nested_document_roundtrips() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":{"c":"x\ny"},"d":[]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
    }

    #[test]
    fn float_bits_roundtrip_through_text() {
        for bits in
            [0x3FB999999999999Au64, 0x7FEFFFFFFFFFFFFF, 0x0000000000000001, 0x8000000000000000]
        {
            let f = f64::from_bits(bits);
            let Value::F64(back) = parse(&Value::F64(f).render()).unwrap() else {
                panic!("float parsed as non-float");
            };
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::str("q\"\\\n\t\r\u{8}\u{c}/é\u{1F600}");
        let Value::Str(back) = parse(&v.render()).unwrap() else { panic!() };
        assert_eq!(Value::Str(back), v);
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(parse(r#""\u0041\ud83d\ude00""#).unwrap(), Value::str("A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\u{1}\"",
            "\"unterminated",
            "[1]]",
            "nul",
            "--1",
            "\"\\ud800x\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let text = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&text).is_err());
    }

    #[test]
    fn typed_entry_points() {
        assert_eq!(to_string(&true), "true");
        let v: bool = from_str("true").unwrap();
        assert!(v);
        assert!(from_str::<bool>("1").is_err());
    }
}
