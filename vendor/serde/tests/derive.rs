//! End-to-end tests of the derive macros + JSON round-trips, exercising
//! every supported shape (named structs, newtype/tuple/unit structs,
//! enums with unit/newtype/tuple/struct variants, nesting, options).

use serde::{json, Deserialize, Serialize, Value};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Id(u32);

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Pair(f64, f64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Marker;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
enum Mode {
    #[default]
    Fast,
    Careful,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Payload {
    Empty,
    One(Id),
    Two(f64, u32),
    Shaped { left: String, right: Option<u64> },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Doc {
    name: String,
    mode: Mode,
    ids: Vec<Id>,
    origin: Pair,
    limit: Option<f64>,
    payloads: Vec<Payload>,
    marker: Marker,
}

fn doc() -> Doc {
    Doc {
        name: "fixture \"quoted\"\n".to_string(),
        mode: Mode::Careful,
        ids: vec![Id(0), Id(4_000_000_000)],
        origin: Pair(-0.0, 1e-300),
        limit: None,
        payloads: vec![
            Payload::Empty,
            Payload::One(Id(7)),
            Payload::Two(2.5, 9),
            Payload::Shaped { left: "l".into(), right: Some(u64::MAX) },
        ],
        marker: Marker,
    }
}

#[test]
fn document_roundtrips_bit_exactly() {
    let d = doc();
    let text = json::to_string(&d);
    let back: Doc = json::from_str(&text).unwrap();
    assert_eq!(back, d);
    // Render → parse → render is byte-identical (stable key order,
    // shortest-float representation).
    assert_eq!(json::to_string(&back), text);
}

#[test]
fn newtype_is_transparent() {
    assert_eq!(json::to_string(&Id(5)), "5");
    assert_eq!(json::from_str::<Id>("5").unwrap(), Id(5));
}

#[test]
fn tuple_struct_is_array() {
    assert_eq!(json::to_string(&Pair(1.0, -2.5)), "[1.0,-2.5]");
    assert_eq!(json::from_str::<Pair>("[1.0,-2.5]").unwrap(), Pair(1.0, -2.5));
    assert!(json::from_str::<Pair>("[1.0]").is_err());
}

#[test]
fn enums_are_externally_tagged() {
    assert_eq!(json::to_string(&Mode::Fast), "\"Fast\"");
    assert_eq!(json::to_string(&Payload::One(Id(7))), "{\"One\":7}");
    assert_eq!(json::to_string(&Payload::Two(2.5, 9)), "{\"Two\":[2.5,9]}");
    assert_eq!(
        json::to_string(&Payload::Shaped { left: "x".into(), right: None }),
        "{\"Shaped\":{\"left\":\"x\",\"right\":null}}"
    );
    assert_eq!(json::from_str::<Mode>("\"Careful\"").unwrap(), Mode::Careful);
}

#[test]
fn shape_errors_are_descriptive() {
    let err = json::from_str::<Doc>("{\"name\":\"x\"}").unwrap_err();
    assert!(err.message().contains("missing field"), "{err}");
    let err = json::from_str::<Mode>("\"Turbo\"").unwrap_err();
    assert!(err.message().contains("unknown variant"), "{err}");
    let err = json::from_str::<Payload>("{\"One\":7,\"Two\":[1.5,2]}").unwrap_err();
    assert!(err.message().contains("single-key"), "{err}");
    let err = json::from_str::<Payload>("{\"Empty\":3}").unwrap_err();
    assert!(err.message().contains("no payload"), "{err}");
    let err = json::from_str::<Payload>("\"One\"").unwrap_err();
    assert!(err.message().contains("requires a payload"), "{err}");
}

#[test]
fn untyped_value_passthrough() {
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Holder {
        extra: Value,
    }
    let h = Holder { extra: Value::obj([("k", Value::num(1.5))]) };
    let text = json::to_string(&h);
    assert_eq!(text, "{\"extra\":{\"k\":1.5}}");
    assert_eq!(json::from_str::<Holder>(&text).unwrap(), h);
}
