//! Vendored, offline subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the surface the workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up for a
//! fixed number of iterations, then timed over `sample_size` samples, and
//! the mean / best wall time per iteration is printed. There are no
//! statistical reports or HTML output. Set the `CRITERION_SAMPLE_SIZE`
//! environment variable to override sample counts globally (useful to
//! smoke-run benches in CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point: holds global defaults and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size =
            std::env::var("CRITERION_SAMPLE_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Self { sample_size }
    }
}

impl Criterion {
    /// Overrides the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Times one benchmark closure and prints a summary line.
fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    // Warm-up & calibration: grow the per-sample iteration count until one
    // sample takes ≥ ~20ms (or the count reaches a cap for very slow
    // bodies).
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(20) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 2;
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        best = best.min(bencher.elapsed);
        total += bencher.elapsed;
    }
    let per_iter = |d: Duration| d.as_secs_f64() / bencher.iters as f64;
    println!(
        "bench {label:<50} mean {:>12}  best {:>12}  ({} samples x {} iters)",
        format_time(per_iter(total) / samples as f64),
        format_time(per_iter(best)),
        samples,
        bencher.iters,
    );
}

/// Formats seconds with an adaptive unit.
fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to benchmark closures; runs and times the measured body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{name}/{parameter}") }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }

    #[test]
    fn time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
