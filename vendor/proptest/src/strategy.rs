//! The [`Strategy`] trait and the built-in strategies (ranges, tuples,
//! map/flat-map combinators).

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to pick a second-stage strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies behind references generate the same values.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
        assert_eq!(Just(7u8).new_value(&mut rng), 7);
    }

    #[test]
    fn tuples_sample_each_component() {
        let mut rng = TestRng::seed_from_u64(2);
        let (a, b, c) = (0usize..5, 5usize..10, 0.0f64..1.0).new_value(&mut rng);
        assert!(a < 5 && (5..10).contains(&b) && (0.0..1.0).contains(&c));
    }
}
