//! Collection strategies: [`vec()`] and [`hash_set`].

use std::collections::HashSet;
use std::hash::Hash;

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Anything accepted as a size specification: a fixed `usize`, `lo..hi`
/// or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
///
/// Like upstream, the produced set may be smaller than the drawn size when
/// the element domain is too small to supply enough distinct values; the
/// insertion attempts are bounded so generation always terminates.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 10 + 100 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::seed_from_u64(1);
        assert_eq!(vec(0usize..5, 3).new_value(&mut rng).len(), 3);
        let v = vec(0usize..5, 1..4).new_value(&mut rng);
        assert!((1..4).contains(&v.len()));
        let w = vec(0usize..5, 2..=2usize).new_value(&mut rng);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn hash_set_distinct_and_bounded() {
        let mut rng = TestRng::seed_from_u64(2);
        // Domain of 3 values but target up to 10: terminates, ≤ 3 elements.
        let s = hash_set(0usize..3, 10).new_value(&mut rng);
        assert!(s.len() <= 3);
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = vec((0.0f64..1.0, 0.0f64..1.0), 4);
        let v = s.new_value(&mut rng);
        assert_eq!(v.len(), 4);
    }
}
