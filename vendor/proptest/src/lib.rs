//! Vendored, offline subset of the [`proptest`](https://crates.io/crates/proptest)
//! API.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the surface the workspace's property tests use: the
//! [`Strategy`] trait with [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`], range and tuple strategies,
//! [`collection::vec`] / [`collection::hash_set`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed per test (derived from the test name), there is no
//! shrinking, and `prop_assert*` failures panic immediately like the
//! standard assert macros. Rejected cases (via [`prop_assume!`]) are
//! retried up to a bounded multiple of the configured case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// The RNG driving value generation.
pub type TestRng = SmallRng;

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Marker returned (via `Err`) when [`prop_assume!`] rejects a case.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseReject;

/// Builds the RNG for one test case (used by the [`proptest!`] macro so
/// user crates don't need `rand` in scope).
pub fn seed_rng(seed: u64) -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// FNV-1a hash of a test name, used to give every test its own
/// deterministic RNG stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut passed: u32 = 0;
                let mut attempt: u64 = 0;
                let max_attempts = u64::from(config.cases) * 16 + 64;
                while passed < config.cases {
                    assert!(
                        attempt < max_attempts,
                        "proptest: too many rejected cases ({} attempts, {} passed)",
                        attempt,
                        passed
                    );
                    let mut rng: $crate::TestRng = $crate::seed_rng(
                        $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)))
                            .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    attempt += 1;
                    let outcome: ::core::result::Result<(), $crate::TestCaseReject> = {
                        let ( $( $arg, )+ ) =
                            ( $( $crate::Strategy::new_value(&$strat, &mut rng), )+ );
                        #[allow(clippy::redundant_closure_call)]
                        (|| -> ::core::result::Result<(), $crate::TestCaseReject> {
                            $body
                            Ok(())
                        })()
                    };
                    if outcome.is_ok() {
                        passed += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::core::assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::core::assert_eq!($($tt)*) };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn fixed_pair() -> impl Strategy<Value = (usize, usize)> {
        (0usize..10, 10usize..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuple_patterns_work((a, b) in fixed_pair()) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }

        #[test]
        fn assume_skips_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_and_map_compose(v in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..100, n..=n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = v;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn hash_sets_have_distinct_elements(s in crate::collection::hash_set(0usize..50, 0..20)) {
            prop_assert!(s.len() <= 20);
        }
    }
}
