//! Real `#[derive(Serialize, Deserialize)]` macros for the vendored
//! `serde` crate — no longer no-ops.
//!
//! The build environment has no crates.io access (so no `syn`/`quote`);
//! the input item is parsed with a small hand-rolled token walker and the
//! impls are emitted by string formatting. Supported shapes — everything
//! the workspace derives on:
//!
//! * structs with named fields (any field visibility),
//! * tuple structs (1 field = transparent newtype, n fields = array),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged: `"Variant"` or `{"Variant": payload}`, like upstream serde).
//!
//! One field attribute is supported: `#[serde(skip_if_null)]` omits the
//! field from the serialized object when its value renders as `null`
//! (upstream's `skip_serializing_if = "Option::is_none"`). Deserialization
//! already treats a missing key as `null`, so the round-trip holds.
//!
//! Generic type parameters are intentionally unsupported (nothing in the
//! workspace needs them); deriving on a generic type is a compile error
//! with a clear message.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (see crate docs for supported shapes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = Input::parse(item);
    input.serialize_impl().parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (see crate docs for supported shapes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = Input::parse(item);
    input.deserialize_impl().parse().expect("serde_derive: generated invalid Deserialize impl")
}

/// One named field: its identifier plus the `skip_if_null` marker.
struct Field {
    name: String,
    skip_if_null: bool,
}

/// The shape of one struct body or enum-variant body.
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

enum Data {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    data: Data,
}

impl Input {
    fn parse(item: TokenStream) -> Self {
        let tokens: Vec<TokenTree> = item.into_iter().collect();
        let mut i = 0;
        // Skip attributes and visibility up to the `struct` / `enum`
        // keyword.
        let kind = loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
                Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
                Some(_) => i += 1,
                None => panic!("serde_derive: expected `struct` or `enum`"),
            }
        };
        i += 1;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => panic!("serde_derive: expected a type name"),
        };
        i += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '<' {
                panic!("serde_derive: generic types are not supported (deriving on `{name}`)");
            }
        }
        let data = match (kind, tokens.get(i)) {
            ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            ("struct", _) => Data::Struct(Fields::Unit),
            ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive: malformed item body for `{name}`"),
        };
        Self { name, data }
    }

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.data {
            Data::Struct(fields) => struct_to_value(name, fields, StructAccess::SelfDot),
            Data::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|(variant, fields)| enum_arm_to_value(name, variant, fields))
                    .collect();
                format!("match self {{ {arms} }}")
            }
        };
        format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {body} }}\n\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.data {
            Data::Struct(fields) => struct_from_value(name, name, fields, "value"),
            Data::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|(variant, fields)| enum_arm_from_value(name, variant, fields))
                    .collect();
                format!(
                    "let (tag, payload) = serde::variant(value, \"{name}\")?;\n\
                     match tag {{ {arms}\n\
                         other => ::std::result::Result::Err(serde::Error::new(\
                             ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                     }}"
                )
            }
        };
        format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(value: &serde::Value) \
                     -> ::std::result::Result<Self, serde::Error> {{ {body} }}\n\
             }}"
        )
    }
}

/// How the serialize body reaches the fields: `self.f` for structs,
/// bound names for enum-variant arms.
enum StructAccess {
    SelfDot,
    Bound,
}

fn struct_to_value(_name: &str, fields: &Fields, access: StructAccess) -> String {
    match fields {
        Fields::Named(names) => {
            if names.iter().any(|f| f.skip_if_null) {
                // Push-based body: `skip_if_null` fields are appended only
                // when their value is not `null`, so an absent optional
                // field leaves the output bytes untouched.
                let mut body = String::from(
                    "{ let mut fields: ::std::vec::Vec<(::std::string::String, serde::Value)> \
                     = ::std::vec::Vec::new(); ",
                );
                for f in names {
                    let name = &f.name;
                    let expr = match access {
                        StructAccess::SelfDot => format!("&self.{name}"),
                        StructAccess::Bound => name.clone(),
                    };
                    if f.skip_if_null {
                        body.push_str(&format!(
                            "{{ let value = serde::Serialize::to_value({expr}); \
                             if !::std::matches!(value, serde::Value::Null) {{ \
                                 fields.push((::std::string::String::from(\"{name}\"), value)); \
                             }} }} "
                        ));
                    } else {
                        body.push_str(&format!(
                            "fields.push((::std::string::String::from(\"{name}\"), \
                             serde::Serialize::to_value({expr}))); "
                        ));
                    }
                }
                body.push_str("serde::Value::Obj(fields) }");
                return body;
            }
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    let f = &f.name;
                    let expr = match access {
                        StructAccess::SelfDot => format!("&self.{f}"),
                        StructAccess::Bound => f.clone(),
                    };
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         serde::Serialize::to_value({expr}))"
                    )
                })
                .collect();
            format!("serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => match access {
            StructAccess::SelfDot => "serde::Serialize::to_value(&self.0)".to_string(),
            StructAccess::Bound => "serde::Serialize::to_value(f0)".to_string(),
        },
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| match access {
                    StructAccess::SelfDot => format!("serde::Serialize::to_value(&self.{i})"),
                    StructAccess::Bound => format!("serde::Serialize::to_value(f{i})"),
                })
                .collect();
            format!("serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "serde::Value::Null".to_string(),
    }
}

/// Deserialize body constructing `ctor` (a type name or `Type::Variant`
/// path) from the value expression `source`.
fn struct_from_value(type_name: &str, ctor: &str, fields: &Fields, source: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("{f}: serde::from_field({source}, \"{type_name}\", \"{f}\")?")
                })
                .collect();
            format!("::std::result::Result::Ok({ctor} {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({ctor}(serde::Deserialize::from_value({source})?))")
        }
        Fields::Tuple(n) => {
            let args: Vec<String> =
                (0..*n).map(|i| format!("serde::Deserialize::from_value(&items[{i}])?")).collect();
            format!(
                "let items = {source}.as_arr().ok_or_else(|| serde::Error::new(\
                     ::std::format!(\"{type_name}: expected array, got {{}}\", {source}.kind())))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(serde::Error::new(\
                         ::std::format!(\"{type_name}: expected {n} elements, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({ctor}({args}))",
                args = args.join(", ")
            )
        }
        Fields::Unit => format!(
            "match {source} {{\n\
                 serde::Value::Null => ::std::result::Result::Ok({ctor}),\n\
                 other => ::std::result::Result::Err(serde::Error::new(\
                     ::std::format!(\"{type_name}: expected null, got {{}}\", other.kind()))),\n\
             }}"
        ),
    }
}

fn enum_arm_to_value(name: &str, variant: &str, fields: &Fields) -> String {
    let tag = format!("::std::string::String::from(\"{variant}\")");
    match fields {
        Fields::Unit => {
            format!("{name}::{variant} => serde::Value::Str({tag}),\n")
        }
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let payload = struct_to_value(name, fields, StructAccess::Bound);
            format!(
                "{name}::{variant}({binds}) => serde::Value::Obj(::std::vec![({tag}, {payload})]),\n",
                binds = binds.join(", ")
            )
        }
        Fields::Named(field_names) => {
            let payload = struct_to_value(name, fields, StructAccess::Bound);
            let binds: Vec<&str> = field_names.iter().map(|f| f.name.as_str()).collect();
            format!(
                "{name}::{variant} {{ {binds} }} => \
                     serde::Value::Obj(::std::vec![({tag}, {payload})]),\n",
                binds = binds.join(", ")
            )
        }
    }
}

fn enum_arm_from_value(name: &str, variant: &str, fields: &Fields) -> String {
    let qualified = format!("{name}::{variant}");
    match fields {
        Fields::Unit => format!(
            "\"{variant}\" => match payload {{\n\
                 ::std::option::Option::None => ::std::result::Result::Ok({qualified}),\n\
                 ::std::option::Option::Some(_) => ::std::result::Result::Err(serde::Error::new(\
                     \"{name}: unit variant `{variant}` takes no payload\")),\n\
             }},\n"
        ),
        _ => {
            let body = struct_from_value(&qualified, &qualified, fields, "payload");
            format!(
                "\"{variant}\" => {{\n\
                     let payload = payload.ok_or_else(|| serde::Error::new(\
                         \"{name}: variant `{variant}` requires a payload\"))?;\n\
                     {body}\n\
                 }},\n"
            )
        }
    }
}

/// Whether an attribute group (the `[...]` after `#`) is
/// `[serde(skip_if_null)]`.
fn is_skip_if_null_attr(tokens: &[TokenTree], i: usize) -> bool {
    let Some(TokenTree::Group(attr)) = tokens.get(i + 1) else {
        return false;
    };
    if attr.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
    let [TokenTree::Ident(head), TokenTree::Group(args)] = &inner[..] else {
        return false;
    };
    if head.to_string() != "serde" || args.delimiter() != Delimiter::Parenthesis {
        return false;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    matches!(&args[..], [TokenTree::Ident(arg)] if arg.to_string() == "skip_if_null")
}

/// Parses `a: T, pub b: U, ...` from a brace group, returning field
/// names plus their `#[serde(skip_if_null)]` markers.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut skip_if_null = false;
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility (remembering a pending
        // `#[serde(skip_if_null)]` for the field that follows).
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                skip_if_null |= is_skip_if_null_attr(&tokens, i);
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(Field { name: id.to_string(), skip_if_null });
                skip_if_null = false;
                i += 1;
                // Skip `:` and the type, up to the next top-level comma.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1; // past the comma (or end)
            }
            other => panic!("serde_derive: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

/// Parses enum variants (skipping attributes like `#[default]`).
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                variants.push((name, fields));
            }
            other => panic!("serde_derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}
