//! No-op `#[derive(Serialize, Deserialize)]` macros for the vendored
//! `serde` stub.
//!
//! The workspace only uses serde through
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`
//! attributes; no code path actually serializes anything (there is no
//! `serde_json` in the tree). These derives therefore expand to nothing:
//! they exist so the `serde` feature still compiles offline.

use proc_macro::TokenStream;

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
