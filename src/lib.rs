//! Umbrella crate for the tangled-logic workspace: a Rust reproduction of
//! *"Detecting Tangled Logic Structures in VLSI Netlists"* (Jindal,
//! Alpert, Hu, Li, Nam, Winn — DAC 2010).
//!
//! Re-exports the six library crates:
//!
//! * [`api`] — the versioned request/response surface (JSON contracts,
//!   `Session`, structured errors, the `gtl serve` backend);
//! * [`core`] — the shared deterministic parallel execution layer every
//!   fan-out in the workspace runs on (ordered results, thread-count
//!   independence, seed-stable RNG streams, per-worker scratch reuse);
//! * [`netlist`] — hypergraph netlists, Bookshelf/Verilog/hgr parsers;
//! * [`synth`] — synthetic workload generators with planted ground truth;
//! * [`tangled`] — the GTL metrics and the three-phase finder (the
//!   paper's contribution);
//! * [`place`] — quadratic placement, legalization, congestion estimation
//!   and the cell-inflation flow.
//!
//! See `README.md` for a tour (including the workspace layout and the
//! execution-layer determinism contract) and `examples/` for runnable
//! walkthroughs.

#![forbid(unsafe_code)]

pub use gtl_api as api;
pub use gtl_core as core;
pub use gtl_netlist as netlist;
pub use gtl_place as place;
pub use gtl_synth as synth;
pub use gtl_tangled as tangled;
