//! Bookshelf interchange: export a synthetic design in ISPD format, read
//! it back, find its GTLs, and emit a soft-block floorplanning report —
//! the paper's floorplanning application (intro, bullet 2).
//!
//! Run with `cargo run --release --example bookshelf_flow`.

use std::error::Error;

use tangled_logic::netlist::bookshelf::{self, BookshelfDesign, Row};
use tangled_logic::synth::ispd_like::{generate, IspdBenchmark, IspdLikeConfig};
use tangled_logic::tangled::{FinderConfig, TangledLogicFinder};

fn main() -> Result<(), Box<dyn Error>> {
    // Generate a small ISPD-like circuit and dress it as a Bookshelf design.
    let circuit = generate(&IspdLikeConfig::new(IspdBenchmark::Adaptec2, 0.005));
    let n = circuit.netlist.num_cells();
    let side = (circuit.netlist.total_cell_area() / 0.7).sqrt().ceil();
    let rows: Vec<Row> = (0..side as usize)
        .map(|r| Row {
            y: r as f64,
            height: 1.0,
            x: 0.0,
            num_sites: side as usize,
            site_width: 1.0,
        })
        .collect();
    let design = BookshelfDesign {
        widths: (0..n)
            .map(|i| circuit.netlist.cell_area(tangled_logic::netlist::CellId::new(i)))
            .collect(),
        heights: vec![1.0; n],
        fixed: vec![false; n],
        positions: None,
        rows,
        netlist: circuit.netlist,
    };

    // Write <tmp>/adaptec2_like.aux + .nodes + .nets + .scl, then read back.
    let dir = std::env::temp_dir().join("gtl_bookshelf_flow");
    bookshelf::write_design(&design, &dir, "adaptec2_like")?;
    println!("wrote Bookshelf design to {}", dir.display());
    let loaded = bookshelf::read_aux(dir.join("adaptec2_like.aux"))?;
    println!(
        "read back: {} cells, {} nets, {} rows",
        loaded.netlist.num_cells(),
        loaded.netlist.num_nets(),
        loaded.rows.len()
    );
    assert_eq!(loaded.netlist.num_pins(), design.netlist.num_pins());

    // Find GTLs on the re-loaded design and print a soft-block report.
    let config = FinderConfig {
        num_seeds: 60,
        max_order_len: loaded.netlist.num_cells() / 4,
        min_size: 30,
        rng_seed: 3,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(&loaded.netlist, config).run();

    println!("\nsoft-block floorplanning report ({} blocks):", result.gtls.len());
    println!("block  cells  area     cut   score   suggested region");
    for (i, gtl) in result.gtls.iter().enumerate() {
        let area: f64 = gtl.cells.iter().map(|&c| loaded.netlist.cell_area(c)).sum();
        // A square soft block with 30% whitespace.
        let block_side = (area / 0.7).sqrt();
        println!(
            "B{:<5} {:<6} {:<8.1} {:<5} {:<7.3} {:.0}×{:.0} sites",
            i,
            gtl.len(),
            area,
            gtl.stats.cut,
            gtl.score,
            block_side,
            block_side
        );
    }
    Ok(())
}
