//! Plant GTLs in a random graph, recover them, and report Miss%/Over% —
//! a miniature of the paper's Table 1 experiment.
//!
//! Run with `cargo run --release --example planted_structures`.

use tangled_logic::synth::planted::{self, PlantedConfig};
use tangled_logic::tangled::{match_gtls, FinderConfig, TangledLogicFinder};

fn main() {
    // 20K-cell random graph with three planted structures of very
    // different sizes — the size-fairness of the metrics is the point.
    let graph = planted::generate(&PlantedConfig {
        num_cells: 20_000,
        blocks: vec![300, 1_200, 4_000],
        seed: 42,
        ..PlantedConfig::default()
    });
    println!(
        "{}: {} cells, {} nets, {} planted structures",
        graph.name,
        graph.netlist.num_cells(),
        graph.netlist.num_nets(),
        graph.truth.len()
    );

    let config = FinderConfig {
        num_seeds: 200,
        max_order_len: 10_000,
        min_size: 100,
        rng_seed: 7,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(&graph.netlist, config).run();
    println!(
        "finder: {} candidates from 200 seeds, {} final GTLs, p ≈ {:.2}",
        result.num_candidates,
        result.gtls.len(),
        result.avg_rent_exponent
    );

    let found: Vec<Vec<_>> = result.gtls.iter().map(|g| g.cells.clone()).collect();
    let report = match_gtls(&graph.truth, &found, graph.netlist.num_cells());
    println!("\nplanted   found   nGTL-S   GTL-SD   miss    over");
    println!("--------------------------------------------------");
    for m in &report.matches {
        let gtl = &result.gtls[m.found_index];
        println!(
            "{:<9} {:<7} {:<8.4} {:<8.4} {:<6.2}% {:<6.2}%",
            m.truth_size, m.found_size, gtl.ngtl_score, gtl.gtl_sd, m.miss_pct, m.over_pct
        );
    }
    for &i in &report.missed_truths {
        println!("{:<9} MISSED", graph.truth[i].len());
    }
    assert!(report.all_found(), "every planted structure should be recovered");
    println!("\nall {} planted structures recovered ✓", graph.truth.len());
}
