//! Re-synthesis application (paper intro, bullet 3): find a GTL, decompose
//! its high-fanout internal nets into buffer trees — more area, less
//! interconnect — and show the tangledness score and congestion both drop.
//!
//! Run with `cargo run --release --example resynthesis`.

use tangled_logic::netlist::{CellSet, SubsetStats};
use tangled_logic::place::congestion::{estimate, RoutingConfig};
use tangled_logic::place::{place, Die, PlacerConfig};
use tangled_logic::synth::industrial::{self, IndustrialConfig};
use tangled_logic::synth::resynth::{resynthesize, ResynthConfig};
use tangled_logic::tangled::metrics::{self, DesignContext};
use tangled_logic::tangled::{FinderConfig, TangledLogicFinder};

fn main() {
    let circuit =
        industrial::generate(&IndustrialConfig { scale: 0.005, ..IndustrialConfig::default() });
    let netlist = &circuit.netlist;
    println!("{}: {} cells, {} nets", circuit.name, netlist.num_cells(), netlist.num_nets());

    // Find the most tangled structure.
    let smallest = circuit.truth.iter().map(Vec::len).min().unwrap_or(1);
    let largest = circuit.truth.iter().map(Vec::len).max().unwrap_or(1);
    let config = FinderConfig {
        num_seeds: 3 * netlist.num_cells() / smallest.max(1),
        max_order_len: largest * 5 / 2,
        min_size: (largest / 20).clamp(16, 1000),
        accept_threshold: 0.3,
        rng_seed: 4,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(netlist, config).run();
    let gtl = &result.gtls[0];
    println!(
        "found {} GTLs; worst: {} cells, cut {}, GTL-SD {:.4}",
        result.gtls.len(),
        gtl.len(),
        gtl.stats.cut,
        gtl.gtl_sd
    );

    // Re-synthesize every found GTL: fanout-3 buffer trees for the nets
    // internal to the union (the GTLs are disjoint, so no net spans two).
    let all_cells: Vec<_> = result.gtls.iter().flat_map(|g| g.cells.iter().copied()).collect();
    let (resynth, report) = resynthesize(netlist, &all_cells, &ResynthConfig { max_fanout: 3 });
    println!(
        "resynthesis: {} nets decomposed, {} buffers added, pins {} → {}",
        report.nets_decomposed, report.buffers_added, report.pins_before, report.pins_after
    );

    // Score the union of the tangled structures before and after (same
    // Rent exponent); the buffers belong to the resynthesized version.
    let mut new_members = all_cells.clone();
    new_members.extend(
        (netlist.num_cells()..resynth.num_cells()).map(tangled_logic::netlist::CellId::new),
    );
    let before_stats = SubsetStats::compute(
        netlist,
        &CellSet::from_cells(netlist.num_cells(), all_cells.iter().copied()),
    );
    let after_stats = SubsetStats::compute(
        &resynth,
        &CellSet::from_cells(resynth.num_cells(), new_members.iter().copied()),
    );
    let ctx_before = DesignContext::new(netlist, gtl.rent_exponent);
    let ctx_after = DesignContext::new(&resynth, gtl.rent_exponent);
    let sd_before = metrics::gtl_sd_score(
        before_stats.cut,
        before_stats.size,
        before_stats.avg_pins_per_cell(),
        &ctx_before,
    );
    let sd_after = metrics::gtl_sd_score(
        after_stats.cut,
        after_stats.size,
        after_stats.avg_pins_per_cell(),
        &ctx_after,
    );
    println!(
        "A_C {:.2} → {:.2}; GTL-SD {:.4} → {:.4} (higher = less tangled)",
        before_stats.avg_pins_per_cell(),
        after_stats.avg_pins_per_cell(),
        sd_before,
        sd_after
    );
    assert!(after_stats.avg_pins_per_cell() < before_stats.avg_pins_per_cell());

    // Peak congestion before and after (same routing calibration approach).
    let routing = RoutingConfig { tiles: 16, target_mean: 0.5, ..RoutingConfig::default() };
    let peak = |nl: &tangled_logic::netlist::Netlist| {
        let die = Die::for_netlist(nl, 0.5);
        let p = place(nl, &die, &PlacerConfig::default());
        estimate(nl, &p, &die, &routing).max_utilization()
    };
    let peak_before = peak(netlist);
    let peak_after = peak(&resynth);
    println!("peak tile utilization: {peak_before:.2} → {peak_after:.2}");
    println!("\nre-synthesis traded {} buffer cells for less interconnect ✓", report.buffers_added);
}
