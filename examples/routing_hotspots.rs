//! Full flow: synthesize a circuit with tangled blobs → find GTLs →
//! place → estimate congestion → inflate GTL cells 4× → re-place →
//! compare — the paper's §5.1.3 application, end to end.
//!
//! Run with `cargo run --release --example routing_hotspots`.

use tangled_logic::place::congestion::RoutingConfig;
use tangled_logic::place::inflate::run_inflation_flow;
use tangled_logic::place::PlacerConfig;
use tangled_logic::synth::industrial::{self, IndustrialConfig};
use tangled_logic::tangled::{FinderConfig, TangledLogicFinder};

fn main() {
    // A small industrial-like design with dissolved-ROM blobs.
    let circuit =
        industrial::generate(&IndustrialConfig { scale: 0.015, ..IndustrialConfig::default() });
    let netlist = &circuit.netlist;
    println!("{}: {} cells, {} nets", circuit.name, netlist.num_cells(), netlist.num_nets());

    // Find the tangled blobs (no ground-truth knowledge used).
    let smallest = circuit.truth.iter().map(Vec::len).min().unwrap_or(1);
    let largest = circuit.truth.iter().map(Vec::len).max().unwrap_or(1);
    let config = FinderConfig {
        num_seeds: 3 * netlist.num_cells() / smallest.max(1),
        max_order_len: largest * 5 / 2,
        min_size: (largest / 20).clamp(16, 1000),
        accept_threshold: 0.3,
        rng_seed: 11,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(netlist, config).run();
    let gtl_cells: Vec<_> = result.gtls.iter().flat_map(|g| g.cells.iter().copied()).collect();
    println!(
        "found {} GTLs covering {} cells ({:.1}% of the design)",
        result.gtls.len(),
        gtl_cells.len(),
        100.0 * gtl_cells.len() as f64 / netlist.num_cells() as f64
    );

    // Place, measure, inflate 4×, re-place, measure again.
    let routing = RoutingConfig { tiles: 24, target_mean: 0.5, ..RoutingConfig::default() };
    let outcome =
        run_inflation_flow(netlist, &gtl_cells, 4.0, 0.35, &PlacerConfig::default(), &routing);

    println!("\nbaseline : {}", outcome.before);
    println!("inflated : {}", outcome.after);
    println!("\nnets through ≥100% tiles: {:.1}× reduction", outcome.reduction_100pct());
    println!("nets through ≥90% tiles:  {:.1}× reduction", outcome.reduction_90pct());
    println!(
        "peak tile utilization:    {:.2} → {:.2}",
        outcome.before.max_utilization, outcome.after.max_utilization
    );
    assert!(
        outcome.after.max_utilization < outcome.before.max_utilization,
        "inflation should relieve the worst hotspot"
    );
    println!("\nhotspots relieved ✓ (the paper reports 5×/2× on its industrial design)");
}
