//! Quickstart: build a tiny netlist, score groups, and find its GTL.
//!
//! Run with `cargo run --example quickstart`.

use tangled_logic::netlist::{CellSet, NetlistBuilder, SubsetStats};
use tangled_logic::tangled::metrics::{self, DesignContext};
use tangled_logic::tangled::{FinderConfig, TangledLogicFinder};

fn main() {
    // --- 1. Build a netlist: an 8-cell tangle inside sparse glue logic ---
    let mut b = NetlistBuilder::new();
    let cells: Vec<_> = (0..64).map(|i| b.add_cell(format!("u{i}"), 1.0)).collect();

    // The tangle: cells 0..8 wired all-to-all (think: a dissolved MUX plane).
    for i in 0..8 {
        for j in (i + 1)..8 {
            b.add_net(format!("t{i}_{j}"), [cells[i], cells[j]]);
        }
    }
    // Sparse background: a scrambled ring of 2-pin nets.
    for i in 8..64 {
        b.add_net(format!("g{i}a"), [cells[i], cells[8 + (i * 7 + 3) % 56]]);
        b.add_net(format!("g{i}b"), [cells[i], cells[8 + (i * 13 + 5) % 56]]);
    }
    // One wire ties the tangle to the rest.
    b.add_net("bridge", [cells[3], cells[40]]);
    let netlist = b.finish();
    println!(
        "netlist: {} cells, {} nets, A(G) = {:.2}",
        netlist.num_cells(),
        netlist.num_nets(),
        netlist.avg_pins_per_cell()
    );

    // --- 2. Score the known groups by hand --------------------------------
    let ctx = DesignContext::new(&netlist, 0.6);
    for (label, range) in [("tangle (0..8)", 0..8usize), ("random glue (20..28)", 20..28)] {
        let set = CellSet::from_cells(netlist.num_cells(), range.map(|i| cells[i]));
        let stats = SubsetStats::compute(&netlist, &set);
        println!(
            "{label}: |C| = {}, T(C) = {}, nGTL-S = {:.3}, GTL-SD = {:.3}",
            stats.size,
            stats.cut,
            metrics::ngtl_score(stats.cut, stats.size, &ctx),
            metrics::gtl_sd_score(stats.cut, stats.size, stats.avg_pins_per_cell(), &ctx),
        );
    }

    // --- 3. Let the finder discover the tangle on its own -----------------
    let config = FinderConfig {
        num_seeds: 16,
        max_order_len: 32,
        min_size: 4,
        rng_seed: 1,
        ..FinderConfig::default()
    };
    let result = TangledLogicFinder::new(&netlist, config).run();
    println!("\nfinder: {} GTL(s)", result.gtls.len());
    for gtl in &result.gtls {
        let names: Vec<&str> = gtl.cells.iter().map(|&c| netlist.cell_name(c)).collect();
        println!(
            "  {} cells (cut {}, score {:.3}): {}",
            gtl.len(),
            gtl.stats.cut,
            gtl.score,
            names.join(" ")
        );
    }
}
